"""Randomized scenario synthesis: schemas, data, workloads and delta streams.

Scenario diversity in the repo used to be three hand-built workloads
(toy/tpcds/tpch).  This module generates *arbitrarily many* scenarios from a
single seed, following the pyrqg exemplar's shape (seeded config, query-type
distribution, grammar-driven generation):

* :class:`SchemaSynthesizer` draws a star / chain / snowflake FK tree with
  configurable relation counts, fan-outs, per-tier cardinalities and column
  dtypes (integer / float / string / date), then materialises a client
  :class:`~repro.storage.database.Database` for it;
* :class:`QuerySynthesizer` draws a mixed SELECT workload from a query-kind
  distribution covering the full supported SQL surface — COUNT/SUM/AVG
  (single-table and over multi-way FK joins), ``SELECT *``, disjunctive join
  predicates, disjunctive filters, and equality / range / BETWEEN / IN
  filters — validating every candidate through the real parser and planner
  so a generated query is a *plannable* query by construction;
* :func:`synthesize_scenario` bundles both plus seeded delta-query batches
  (the raw material for ``DeltaPackage`` streams feeding
  :meth:`~repro.core.pipeline.Hydra.extend_summary`).

Everything is driven by one ``numpy`` Generator seeded from
:attr:`SynthConfig.seed`: the same config always yields byte-identical SQL
text, schema and data (the property suite pins this).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np
from numpy.typing import NDArray

from ..catalog.schema import Column, ForeignKey, Schema, Table
from ..catalog.types import DATE, FLOAT, INTEGER, StringType, TypeKind
from ..plans.planner import PlannerError, build_plan
from ..sql.parser import SQLParseError, parse_query
from ..sql.query import Query
from ..storage.database import Database
from ..storage.table import TableData

__all__ = [
    "QUERY_KINDS",
    "QuerySynthesizer",
    "SchemaSynthesizer",
    "SynthConfig",
    "SynthQuery",
    "SynthScenario",
    "synthesize_scenario",
]

#: Query kinds the synthesizer can draw (the keys of ``query_weights``).
QUERY_KINDS = (
    "count_single",
    "count_join",
    "sum_single",
    "avg_single",
    "agg_join",
    "select_star",
    "disjunctive_join",
    "disjunctive_filter",
    "in_filter",
)

#: Word stems used to build string-column dictionaries.
_WORDS = (
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
    "oscar", "papa", "quebec", "romeo", "sierra", "tango",
)

_RANGE_OPS = ("<", "<=", ">", ">=")

_DATE_EPOCH = datetime.date(1990, 1, 1)


def _default_query_weights() -> dict[str, float]:
    """The default query-kind distribution (every supported kind on)."""
    return {
        "count_single": 3.0,
        "count_join": 3.0,
        "sum_single": 2.0,
        "avg_single": 2.0,
        "agg_join": 2.0,
        "select_star": 2.0,
        "disjunctive_join": 1.0,
        "disjunctive_filter": 1.0,
        "in_filter": 1.0,
    }


@dataclass(frozen=True)
class SynthConfig:
    """Knobs of one synthesized scenario (all draws flow from ``seed``)."""

    seed: int = 0
    #: "star" | "chain" | "snowflake" | "mixed" (mixed draws one per seed).
    topology: str = "mixed"
    min_relations: int = 3
    max_relations: int = 6
    #: Max FK columns per referencing relation.
    max_fanout: int = 3
    #: Row-count range per FK-tree depth (root first; last entry repeats).
    rows_by_tier: tuple[tuple[int, int], ...] = ((600, 1500), (60, 250), (8, 40))
    #: Value (non-key) columns per relation.
    min_value_columns: int = 1
    max_value_columns: int = 3
    #: Column dtype pool value columns are drawn from.
    dtypes: tuple[str, ...] = ("integer", "float", "string", "date")
    int_value_max: int = 100
    float_value_max: float = 50.0
    max_string_vocab: int = 8
    date_span_days: int = 3650
    #: Probability that an FK column gets zipf-skewed instead of uniform.
    fk_skew_probability: float = 0.3
    num_queries: int = 12
    query_weights: Mapping[str, float] = field(default_factory=_default_query_weights)
    max_join_tables: int = 4
    max_filters_per_query: int = 2
    #: Delta stream shape: ``delta_batches`` batches of ``delta_queries``.
    delta_batches: int = 2
    delta_queries: int = 2

    def __post_init__(self) -> None:
        """Reject configurations no draw could satisfy."""
        if self.topology not in ("star", "chain", "snowflake", "mixed"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if not 2 <= self.min_relations <= self.max_relations:
            raise ValueError("need 2 <= min_relations <= max_relations")
        if self.max_fanout < 1:
            raise ValueError("max_fanout must be >= 1")
        if not self.rows_by_tier:
            raise ValueError("rows_by_tier must not be empty")
        unknown = set(self.dtypes) - {"integer", "float", "string", "date"}
        if unknown:
            raise ValueError(f"unknown dtypes {sorted(unknown)}")
        bad_kinds = set(self.query_weights) - set(QUERY_KINDS)
        if bad_kinds:
            raise ValueError(f"unknown query kinds {sorted(bad_kinds)}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (tuples become lists); inverse of :meth:`from_dict`."""
        return {
            "seed": self.seed,
            "topology": self.topology,
            "min_relations": self.min_relations,
            "max_relations": self.max_relations,
            "max_fanout": self.max_fanout,
            "rows_by_tier": [list(tier) for tier in self.rows_by_tier],
            "min_value_columns": self.min_value_columns,
            "max_value_columns": self.max_value_columns,
            "dtypes": list(self.dtypes),
            "int_value_max": self.int_value_max,
            "float_value_max": self.float_value_max,
            "max_string_vocab": self.max_string_vocab,
            "date_span_days": self.date_span_days,
            "fk_skew_probability": self.fk_skew_probability,
            "num_queries": self.num_queries,
            "query_weights": dict(self.query_weights),
            "max_join_tables": self.max_join_tables,
            "max_filters_per_query": self.max_filters_per_query,
            "delta_batches": self.delta_batches,
            "delta_queries": self.delta_queries,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SynthConfig":
        """Rebuild a config from :meth:`to_dict` output (corpus replay)."""
        data = dict(payload)
        data["rows_by_tier"] = tuple(
            (int(low), int(high)) for low, high in data["rows_by_tier"]
        )
        data["dtypes"] = tuple(data["dtypes"])
        data["query_weights"] = dict(data["query_weights"])
        return cls(**data)


@dataclass(frozen=True)
class SynthQuery:
    """One generated workload query.

    ``oracle_sql`` is what the SQLite oracle runs for it: identical to
    ``sql`` for aggregates, the COUNT(*) rewrite for ``SELECT *`` queries
    (whose engine-side check is the row count).
    """

    name: str
    kind: str
    sql: str
    oracle_sql: str
    query: Query


@dataclass(frozen=True)
class SynthScenario:
    """A fully drawn scenario: schema, client data, workload, delta stream."""

    config: SynthConfig
    topology: str
    schema: Schema
    database: Database
    queries: tuple[SynthQuery, ...]
    delta_batches: tuple[tuple[SynthQuery, ...], ...]

    @property
    def all_queries(self) -> tuple[SynthQuery, ...]:
        """Base workload plus every delta batch, in generation order."""
        flat = list(self.queries)
        for batch in self.delta_batches:
            flat.extend(batch)
        return tuple(flat)

    def query_named(self, name: str) -> SynthQuery:
        """Look up one generated query (base or delta) by its name."""
        for item in self.all_queries:
            if item.name == name:
                return item
        raise KeyError(f"scenario has no query named {name!r}")


class SchemaSynthesizer:
    """Draws a random FK tree and materialises client data for it."""

    def __init__(self, config: SynthConfig, rng: np.random.Generator) -> None:
        """Bind the synthesizer to a config and an already-seeded stream."""
        self.config = config
        self.rng = rng

    def draw_topology(self) -> str:
        """Resolve "mixed" to a concrete topology for this seed."""
        if self.config.topology != "mixed":
            return self.config.topology
        return str(self.rng.choice(["star", "chain", "snowflake"]))

    def _draw_parents(self, count: int, topology: str) -> list[int]:
        """Parent index (referencing table) for each non-root relation.

        ``parents[child - 1]`` is the index of the table holding an FK *to*
        table ``child``; the root (index 0) is the fact table everything
        hangs off.
        """
        parents: list[int] = []
        fanout = [0] * count
        for child in range(1, count):
            if topology == "chain":
                parent = child - 1
            elif topology == "star":
                parent = 0
            else:  # snowflake: any node with spare fan-out, shallow preferred
                candidates = [
                    node for node in range(child)
                    if fanout[node] < self.config.max_fanout
                ]
                weights = np.array([1.0 / (1 + node) for node in candidates])
                weights /= weights.sum()
                parent = int(self.rng.choice(np.array(candidates), p=weights))
            parents.append(parent)
            fanout[parent] += 1
        return parents

    def _tier_rows(self, depth: int) -> int:
        """Draw a row count for a relation at ``depth`` in the FK tree."""
        tiers = self.config.rows_by_tier
        low, high = tiers[min(depth, len(tiers) - 1)]
        return int(self.rng.integers(low, high + 1))

    def _value_column(
        self, table: str, index: int, rows: int
    ) -> tuple[Column, NDArray[Any]]:
        """Draw one value column (dtype + already-encoded data) for ``table``."""
        dtype_name = str(self.rng.choice(list(self.config.dtypes)))
        name = f"{table}_v{index}"
        if dtype_name == "integer":
            ints = self.rng.integers(0, self.config.int_value_max, size=rows)
            return Column(name, INTEGER), np.asarray(ints, dtype=np.int64)
        if dtype_name == "float":
            floats = self.rng.uniform(0.0, self.config.float_value_max, size=rows)
            return Column(name, FLOAT), np.asarray(floats, dtype=np.float64)
        if dtype_name == "date":
            days = self.rng.integers(0, self.config.date_span_days, size=rows)
            return Column(name, DATE), np.asarray(days, dtype=np.int64)
        vocab_size = int(self.rng.integers(3, self.config.max_string_vocab + 1))
        picks = self.rng.choice(len(_WORDS), size=vocab_size, replace=False)
        vocab = [f"{_WORDS[int(w)]}_{int(w):02d}" for w in picks]
        dtype = StringType.from_values(vocab)
        codes = self.rng.integers(0, len(dtype.dictionary), size=rows)
        return Column(name, dtype), np.asarray(codes, dtype=np.int64)

    def _fk_values(self, rows: int, ref_rows: int) -> NDArray[Any]:
        """FK data: uniform over the referenced pk space, or zipf-skewed."""
        if self.rng.random() < self.config.fk_skew_probability:
            values = self.rng.zipf(1.6, size=rows) % ref_rows
        else:
            values = self.rng.integers(0, ref_rows, size=rows)
        return np.asarray(values, dtype=np.int64)

    def build(self) -> tuple[str, Schema, Database]:
        """Draw the whole schema and materialise its client database."""
        config = self.config
        topology = self.draw_topology()
        count = int(self.rng.integers(config.min_relations, config.max_relations + 1))
        if topology == "star":
            count = min(count, config.max_fanout + 1)
        parents = self._draw_parents(count, topology)

        depth = [0] * count
        for child in range(1, count):
            depth[child] = depth[parents[child - 1]] + 1
        names = [f"T{index}" for index in range(count)]
        rows = [self._tier_rows(depth[index]) for index in range(count)]

        # FK edges grouped by the referencing (parent) table.
        fks_of: dict[int, list[int]] = {index: [] for index in range(count)}
        for child in range(1, count):
            fks_of[parents[child - 1]].append(child)

        tables: list[Table] = []
        arrays_by_table: dict[str, dict[str, NDArray[Any]]] = {}
        for index in range(count):
            name = names[index]
            columns = [Column(f"{name}_pk", INTEGER)]
            arrays: dict[str, NDArray[Any]] = {
                f"{name}_pk": np.arange(rows[index], dtype=np.int64)
            }
            foreign_keys: list[ForeignKey] = []
            for ref in fks_of[index]:
                fk_name = f"{name}_{names[ref]}_fk"
                columns.append(Column(fk_name, INTEGER))
                arrays[fk_name] = self._fk_values(rows[index], rows[ref])
                foreign_keys.append(
                    ForeignKey(
                        column=fk_name,
                        ref_table=names[ref],
                        ref_column=f"{names[ref]}_pk",
                    )
                )
            n_values = int(
                self.rng.integers(
                    config.min_value_columns, config.max_value_columns + 1
                )
            )
            for v_index in range(n_values):
                column, values = self._value_column(name, v_index, rows[index])
                columns.append(column)
                arrays[column.name] = values
            tables.append(
                Table(
                    name=name,
                    columns=columns,
                    primary_key=f"{name}_pk",
                    foreign_keys=foreign_keys,
                )
            )
            arrays_by_table[name] = arrays
        schema = Schema.from_tables(tables)
        data = [
            TableData.from_columns(schema.table(name), arrays_by_table[name])
            for name in names
        ]
        return topology, schema, Database.from_table_data(schema, data)


class QuerySynthesizer:
    """Draws plannable SQL from a query-kind distribution over a schema."""

    def __init__(
        self,
        config: SynthConfig,
        schema: Schema,
        database: Database,
        rng: np.random.Generator,
    ) -> None:
        """Bind to the drawn schema/data and the scenario's seeded stream."""
        self.config = config
        self.schema = schema
        self.database = database
        self.rng = rng
        self._seen_sql: set[str] = set()
        weights = {
            kind: float(weight)
            for kind, weight in config.query_weights.items()
            if weight > 0
        }
        if not weights:
            raise ValueError("query_weights must enable at least one kind")
        self._kinds = sorted(weights)
        total = sum(weights[kind] for kind in self._kinds)
        self._probabilities = np.array(
            [weights[kind] / total for kind in self._kinds]
        )

    # -- column helpers ---------------------------------------------------

    def _value_columns(self, table: str) -> list[Column]:
        """The filterable (non-key) columns of ``table``."""
        table_obj = self.schema.table(table)
        keys = {table_obj.primary_key} | {fk.column for fk in table_obj.foreign_keys}
        return [column for column in table_obj.columns if column.name not in keys]

    def _numeric_columns(self, tables: list[str]) -> list[tuple[str, Column]]:
        """SUM/AVG-able (integer/float) columns across ``tables``."""
        found: list[tuple[str, Column]] = []
        for table in tables:
            for column in self._value_columns(table):
                if column.dtype.kind in (TypeKind.INTEGER, TypeKind.FLOAT):
                    found.append((table, column))
        return found

    def _column_values(self, table: str, column: str) -> NDArray[Any]:
        """The materialised (internal-domain) values of one client column."""
        return self.database.table_data(table).column(column)

    # -- constant rendering -----------------------------------------------

    def _render_constant(self, column: Column, internal: float) -> str:
        """Render one internal-domain value as a SQL literal of the column."""
        kind = column.dtype.kind
        if kind is TypeKind.INTEGER:
            return str(int(internal))
        if kind is TypeKind.FLOAT:
            # The tokenizer accepts plain decimals only (no scientific
            # notation), so format with a fixed number of places.
            return f"{float(internal):.6f}"
        if kind is TypeKind.DATE:
            day = _DATE_EPOCH + datetime.timedelta(days=int(internal))
            return f"'{day.isoformat()}'"
        word = str(column.dtype.decode(internal))
        escaped = word.replace("'", "''")
        return f"'{escaped}'"

    def _draw_constant(self, table: str, column: Column) -> str:
        """Draw a literal from the column's actual value distribution."""
        values = self._column_values(table, column.name)
        internal = float(values[int(self.rng.integers(0, len(values)))])
        return self._render_constant(column, internal)

    # -- filter predicates ------------------------------------------------

    def _comparison(self, table: str, column: Column) -> str:
        """One simple comparison predicate on ``table.column``."""
        qualified = f"{table}.{column.name}"
        kind = column.dtype.kind
        if kind is TypeKind.STRING:
            return f"{qualified} = {self._draw_constant(table, column)}"
        choice = self.rng.random()
        if kind is not TypeKind.FLOAT and choice < 0.2:
            return f"{qualified} = {self._draw_constant(table, column)}"
        if choice < 0.6:
            op = _RANGE_OPS[int(self.rng.integers(0, len(_RANGE_OPS)))]
            return f"{qualified} {op} {self._draw_constant(table, column)}"
        lo = self._draw_constant(table, column)
        hi = self._draw_constant(table, column)
        if self._literal_key(column, lo) > self._literal_key(column, hi):
            lo, hi = hi, lo
        return f"{qualified} between {lo} and {hi}"

    @staticmethod
    def _literal_key(column: Column, literal: str) -> Any:
        """Sort key so BETWEEN bounds come out ordered."""
        if column.dtype.kind in (TypeKind.DATE, TypeKind.STRING):
            return literal
        return float(literal)

    def _in_filter(self, table: str, column: Column) -> str:
        """An ``IN ( ... )`` predicate over observed column values."""
        values = self._column_values(table, column.name)
        picks = self.rng.choice(values, size=min(4, len(values)), replace=True)
        literals: list[str] = []
        for value in picks:
            literal = self._render_constant(column, float(value))
            if literal not in literals:
                literals.append(literal)
        return f"{table}.{column.name} in ({', '.join(literals)})"

    def _draw_filters(self, tables: list[str], max_filters: int) -> list[str]:
        """Up to ``max_filters`` simple predicates over the joined tables."""
        candidates: list[tuple[str, Column]] = []
        for table in tables:
            for column in self._value_columns(table):
                candidates.append((table, column))
        if not candidates or max_filters <= 0:
            return []
        n_filters = int(self.rng.integers(0, max_filters + 1))
        predicates: list[str] = []
        for _ in range(n_filters):
            table, column = candidates[int(self.rng.integers(0, len(candidates)))]
            predicates.append(self._comparison(table, column))
        return predicates

    # -- join structure ---------------------------------------------------

    def _draw_join(self, min_tables: int) -> tuple[list[str], list[str]] | None:
        """A connected FK join: (tables, equi-join conditions) or ``None``.

        Grows a random connected subtree of the FK graph, which yields
        chains, stars and mixtures of both depending on the draw.
        """
        with_fks = [
            name for name in self.schema.table_names
            if self.schema.table(name).foreign_keys
        ]
        if not with_fks:
            return None
        start = with_fks[int(self.rng.integers(0, len(with_fks)))]
        joined = [start]
        conditions: list[str] = []
        limit = min(
            self.config.max_join_tables,
            max(min_tables, int(self.rng.integers(min_tables,
                                                  self.config.max_join_tables + 1))),
        )
        while len(joined) < limit:
            edges = [
                (table, fk)
                for table in joined
                for fk in self.schema.table(table).foreign_keys
                if fk.ref_table not in joined
            ]
            if not edges:
                break
            table, fk = edges[int(self.rng.integers(0, len(edges)))]
            joined.append(fk.ref_table)
            conditions.append(
                f"{table}.{fk.column} = {fk.ref_table}.{fk.ref_column}"
            )
        if len(joined) < min_tables:
            return None
        return joined, conditions

    # -- query kinds ------------------------------------------------------

    def _single_table(self) -> str:
        """Draw one relation that has at least one value column."""
        names = [
            name for name in self.schema.table_names if self._value_columns(name)
        ]
        pool = names or list(self.schema.table_names)
        return pool[int(self.rng.integers(0, len(pool)))]

    def _assemble(
        self, select: str, tables: list[str], predicates: list[str]
    ) -> str:
        """Stitch SELECT/FROM/WHERE into the dialect's surface form."""
        sql = f"select {select} from {', '.join(tables)}"
        if predicates:
            sql += " where " + " and ".join(predicates)
        return sql

    def _make_count_single(self) -> str | None:
        table = self._single_table()
        filters = self._draw_filters([table], self.config.max_filters_per_query)
        return self._assemble("count(*)", [table], filters)

    def _make_count_join(self) -> str | None:
        join = self._draw_join(2)
        if join is None:
            return None
        tables, conditions = join
        filters = self._draw_filters(tables, self.config.max_filters_per_query)
        return self._assemble("count(*)", tables, conditions + filters)

    def _make_agg_single(self, function: str) -> str | None:
        table = self._single_table()
        numeric = self._numeric_columns([table])
        if not numeric:
            return None
        _, column = numeric[int(self.rng.integers(0, len(numeric)))]
        filters = self._draw_filters([table], self.config.max_filters_per_query)
        return self._assemble(
            f"{function}({table}.{column.name})", [table], filters
        )

    def _make_agg_join(self) -> str | None:
        join = self._draw_join(2)
        if join is None:
            return None
        tables, conditions = join
        numeric = self._numeric_columns(tables)
        if not numeric:
            return None
        table, column = numeric[int(self.rng.integers(0, len(numeric)))]
        function = "sum" if self.rng.random() < 0.5 else "avg"
        filters = self._draw_filters(tables, self.config.max_filters_per_query)
        return self._assemble(
            f"{function}({table}.{column.name})", tables, conditions + filters
        )

    def _make_select_star(self) -> str | None:
        if self.rng.random() < 0.5:
            join = self._draw_join(2)
            if join is not None:
                tables, conditions = join
                filters = self._draw_filters(tables, 1)
                return self._assemble("*", tables, conditions + filters)
        table = self._single_table()
        filters = self._draw_filters([table], self.config.max_filters_per_query)
        return self._assemble("*", [table], filters)

    def _make_disjunctive_join(self) -> str | None:
        """Figure-1 style: two FK columns may alternatively carry the match."""
        for name in self.schema.table_names:
            fks = self.schema.table(name).foreign_keys
            if len(fks) >= 2:
                picks = self.rng.choice(len(fks), size=2, replace=False)
                first, second = fks[int(picks[0])], fks[int(picks[1])]
                target = first.ref_table
                disjunction = (
                    f"({name}.{first.column} = {target}.{first.ref_column}"
                    f" or {name}.{second.column} = {target}.{first.ref_column})"
                )
                filters = self._draw_filters([name, target], 1)
                return self._assemble(
                    "count(*)", [name, target], [disjunction] + filters
                )
        return None

    def _make_disjunctive_filter(self) -> str | None:
        table = self._single_table()
        columns = self._value_columns(table)
        if not columns:
            return None
        first = columns[int(self.rng.integers(0, len(columns)))]
        second = columns[int(self.rng.integers(0, len(columns)))]
        disjunction = (
            f"({self._comparison(table, first)}"
            f" or {self._comparison(table, second)})"
        )
        return self._assemble("count(*)", [table], [disjunction])

    def _make_in_filter(self) -> str | None:
        table = self._single_table()
        columns = self._value_columns(table)
        if not columns:
            return None
        column = columns[int(self.rng.integers(0, len(columns)))]
        return self._assemble(
            "count(*)", [table], [self._in_filter(table, column)]
        )

    def _draw_sql(self, kind: str) -> str | None:
        """Dispatch one candidate draw for ``kind`` (``None`` = unsupported)."""
        if kind == "count_single":
            return self._make_count_single()
        if kind == "count_join":
            return self._make_count_join()
        if kind == "sum_single":
            return self._make_agg_single("sum")
        if kind == "avg_single":
            return self._make_agg_single("avg")
        if kind == "agg_join":
            return self._make_agg_join()
        if kind == "select_star":
            return self._make_select_star()
        if kind == "disjunctive_join":
            return self._make_disjunctive_join()
        if kind == "disjunctive_filter":
            return self._make_disjunctive_filter()
        if kind == "in_filter":
            return self._make_in_filter()
        raise ValueError(f"unknown query kind {kind!r}")

    # -- public API -------------------------------------------------------

    def generate(self, count: int, prefix: str = "q") -> list[SynthQuery]:
        """Draw ``count`` distinct, plannable queries named ``{prefix}NN``.

        Every candidate is parsed and planned before acceptance; candidates
        the planner rejects (or duplicates of already-drawn SQL) are simply
        redrawn, bounded by an attempts cap so a degenerate schema cannot
        loop forever.
        """
        results: list[SynthQuery] = []
        attempts = 0
        max_attempts = max(count, 1) * 60
        while len(results) < count and attempts < max_attempts:
            attempts += 1
            kind = self._kinds[
                int(self.rng.choice(len(self._kinds), p=self._probabilities))
            ]
            sql = self._draw_sql(kind)
            if sql is None or sql in self._seen_sql:
                continue
            name = f"{prefix}{len(results):02d}"
            try:
                query = parse_query(sql, self.schema, name=name)
                build_plan(query, self.schema)
            except (SQLParseError, PlannerError):  # pragma: no cover - guard
                continue
            self._seen_sql.add(sql)
            if kind == "select_star":
                # The oracle counts what the engine materialises.
                oracle_sql = "select count(*)" + sql[len("select *"):]
            else:
                oracle_sql = sql
            results.append(
                SynthQuery(
                    name=name,
                    kind=kind,
                    sql=sql,
                    oracle_sql=oracle_sql,
                    query=query,
                )
            )
        return results


def synthesize_scenario(config: SynthConfig) -> SynthScenario:
    """Draw one complete scenario from ``config`` (deterministic per seed)."""
    rng = np.random.default_rng(config.seed)
    topology, schema, database = SchemaSynthesizer(config, rng).build()
    synthesizer = QuerySynthesizer(config, schema, database, rng)
    queries = tuple(synthesizer.generate(config.num_queries, prefix="q"))
    batches: list[tuple[SynthQuery, ...]] = []
    for batch in range(config.delta_batches):
        batches.append(
            tuple(synthesizer.generate(config.delta_queries, prefix=f"d{batch}_"))
        )
    return SynthScenario(
        config=config,
        topology=topology,
        schema=schema,
        database=database,
        queries=queries,
        delta_batches=tuple(batches),
    )
