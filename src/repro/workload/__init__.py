"""Workload substrate: synthetic schemas, data generators and SPJ workloads."""

from .generator import (
    WorkloadConfig,
    WorkloadGenerator,
    distinct_filter_columns,
    generate_workload,
    queries_per_table,
    workload_signature,
)
from .synth import (
    QuerySynthesizer,
    SchemaSynthesizer,
    SynthConfig,
    SynthQuery,
    SynthScenario,
    synthesize_scenario,
)
from .toy import FIGURE1_QUERY, ToyConfig, generate_toy_database, toy_schema
from .tpcds import TPCDSConfig, generate_tpcds_database, tpcds_schema
from .tpch import TPCHConfig, generate_tpch_database, tpch_schema

__all__ = [
    "FIGURE1_QUERY",
    "QuerySynthesizer",
    "SchemaSynthesizer",
    "SynthConfig",
    "SynthQuery",
    "SynthScenario",
    "TPCDSConfig",
    "TPCHConfig",
    "ToyConfig",
    "WorkloadConfig",
    "WorkloadGenerator",
    "distinct_filter_columns",
    "generate_toy_database",
    "generate_tpcds_database",
    "generate_tpch_database",
    "generate_workload",
    "queries_per_table",
    "synthesize_scenario",
    "toy_schema",
    "tpcds_schema",
    "tpch_schema",
    "workload_signature",
]
