"""SQL layer: predicate algebra, SPJ query model and a small SQL parser."""

from .expressions import (
    And,
    BoxCondition,
    ColumnCondition,
    Comparison,
    InList,
    Interval,
    IntervalSet,
    Not,
    Or,
    Predicate,
    TruePredicate,
    predicate_from_dict,
)
from .parser import SQLParseError, parse_query
from .query import JoinCondition, Query

__all__ = [
    "And",
    "BoxCondition",
    "ColumnCondition",
    "Comparison",
    "InList",
    "Interval",
    "IntervalSet",
    "JoinCondition",
    "Not",
    "Or",
    "Predicate",
    "Query",
    "SQLParseError",
    "TruePredicate",
    "parse_query",
    "predicate_from_dict",
]
