"""A small SQL parser for the SPJ dialect used by HYDRA workloads.

The demo's workloads are canonical SPJ queries (Figure 1b):

    SELECT * FROM R, S, T
    WHERE R.S_fk = S.S_pk AND R.T_fk = T.T_pk
      AND S.A >= 20 AND S.A < 60 AND T.C >= 2 AND T.C < 3

The parser supports ``SELECT <cols | * | COUNT(*) | SUM(col) | AVG(col)>
FROM <tables> [WHERE ...]`` where the WHERE clause is a conjunction of:

* equi-join conditions ``t1.c1 = t2.c2``;
* comparisons ``col <op> constant`` with numeric, quoted-string or date
  constants (strings/dates are encoded through the column's type);
* ``col BETWEEN a AND b``;
* ``col IN (v1, v2, ...)``;
* parenthesized disjunctions ``(cond OR cond ...)`` whose branches are either
  all filters on one table (a disjunctive filter) or all equi-joins between
  one table pair (a :class:`~repro.sql.query.DisjunctiveJoinCondition`).

That is exactly the query class the region-partitioning LP formulation is
defined for, so the parser intentionally rejects anything outside it with a
clear error instead of guessing.
"""

from __future__ import annotations

import re
from typing import Any

from ..catalog.schema import Schema
from .predicates import And, Comparison, InList, Or, Predicate
from .query import DisjunctiveJoinCondition, JoinCondition, Query

__all__ = ["SQLParseError", "parse_query"]


class SQLParseError(ValueError):
    """Raised when a query cannot be parsed into the supported SPJ dialect."""


_TOKEN_PATTERN = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')            # quoted string
      | (?P<number>-?\d+\.\d+|-?\d+)          # numeric literal
      | (?P<op><=|>=|!=|<>|=|<|>)             # comparison operators
      | (?P<punct>[(),;*])                    # punctuation
      | (?P<word>[A-Za-z_][A-Za-z_0-9.]*)     # identifiers / keywords
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "from",
    "where",
    "and",
    "or",
    "between",
    "in",
    "count",
    "sum",
    "avg",
    "as",
    "not",
}


def _tokenize(sql: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    text = sql.strip()
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise SQLParseError(f"unexpected character at position {position}: {text[position:position + 20]!r}")
        position = match.end()
        if match.lastgroup == "string":
            tokens.append(("string", match.group("string")[1:-1].replace("''", "'")))
        elif match.lastgroup == "number":
            tokens.append(("number", match.group("number")))
        elif match.lastgroup == "op":
            op = match.group("op")
            tokens.append(("op", "!=" if op == "<>" else op))
        elif match.lastgroup == "punct":
            tokens.append(("punct", match.group("punct")))
        elif match.lastgroup == "word":
            word = match.group("word")
            kind = "keyword" if word.lower() in _KEYWORDS else "ident"
            tokens.append((kind, word))
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.index = 0

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.tokens)

    def peek(self) -> tuple[str, str] | None:
        if self.exhausted:
            return None
        return self.tokens[self.index]

    def next(self) -> tuple[str, str]:
        if self.exhausted:
            raise SQLParseError("unexpected end of query")
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        kind, value = self.next()
        if kind != "keyword" or value.lower() != keyword:
            raise SQLParseError(f"expected keyword {keyword!r}, found {value!r}")

    def accept_keyword(self, keyword: str) -> bool:
        token = self.peek()
        if token and token[0] == "keyword" and token[1].lower() == keyword:
            self.index += 1
            return True
        return False

    def accept_punct(self, punct: str) -> bool:
        token = self.peek()
        if token and token[0] == "punct" and token[1] == punct:
            self.index += 1
            return True
        return False

    def expect_punct(self, punct: str) -> None:
        kind, value = self.next()
        if kind != "punct" or value != punct:
            raise SQLParseError(f"expected {punct!r}, found {value!r}")


def _resolve_column(schema: Schema, tables: list[str], reference: str) -> tuple[str, str]:
    """Resolve a possibly-qualified column reference against the FROM tables."""
    if "." in reference:
        table_name, column_name = reference.split(".", 1)
        if table_name not in tables:
            raise SQLParseError(f"table {table_name!r} is not listed in FROM")
        if not schema.table(table_name).has_column(column_name):
            raise SQLParseError(f"table {table_name!r} has no column {column_name!r}")
        return table_name, column_name
    matches = [
        table_name
        for table_name in tables
        if schema.table(table_name).has_column(reference)
    ]
    if not matches:
        raise SQLParseError(f"column {reference!r} not found in any FROM table")
    if len(matches) > 1:
        raise SQLParseError(f"column {reference!r} is ambiguous across {matches}")
    return matches[0], reference


def _encode_constant(schema: Schema, table: str, column: str, kind: str, raw: str) -> float:
    dtype = schema.table(table).column(column).dtype
    if kind == "number":
        value: Any = float(raw) if "." in raw else int(raw)
    else:
        value = raw
    return float(dtype.encode(value))


def parse_query(sql: str, schema: Schema, name: str = "query") -> Query:
    """Parse an SPJ ``SELECT`` statement into a :class:`Query`."""
    tokens = _TokenStream(_tokenize(sql))
    tokens.expect_keyword("select")

    projection: list[str] = []
    if tokens.accept_keyword("count"):
        tokens.expect_punct("(")
        tokens.expect_punct("*")
        tokens.expect_punct(")")
        projection = ["count(*)"]
    elif tokens.accept_keyword("sum") or tokens.accept_keyword("avg"):
        function = tokens.tokens[tokens.index - 1][1].lower()
        tokens.expect_punct("(")
        kind, argument = tokens.next()
        if kind != "ident":
            raise SQLParseError(
                f"expected column argument for {function}(), found {argument!r}"
            )
        tokens.expect_punct(")")
        projection = [f"{function}({argument})"]
    elif tokens.accept_punct("*"):
        projection = ["*"]
    else:
        while True:
            kind, value = tokens.next()
            if kind != "ident":
                raise SQLParseError(f"expected column name in SELECT list, found {value!r}")
            projection.append(value)
            if not tokens.accept_punct(","):
                break

    tokens.expect_keyword("from")
    tables: list[str] = []
    while True:
        kind, value = tokens.next()
        if kind != "ident":
            raise SQLParseError(f"expected table name in FROM, found {value!r}")
        if not schema.has_table(value):
            raise SQLParseError(f"unknown table {value!r}")
        tables.append(value)
        # optional alias (unsupported, but tolerate "table AS table")
        if tokens.accept_keyword("as"):
            tokens.next()
        if not tokens.accept_punct(","):
            break

    joins: "list[JoinCondition | DisjunctiveJoinCondition]" = []
    per_table_filters: dict[str, list[Predicate]] = {}

    if tokens.accept_keyword("where"):
        while True:
            if tokens.accept_punct("("):
                _parse_or_group(tokens, schema, tables, joins, per_table_filters)
            else:
                _parse_condition(tokens, schema, tables, joins, per_table_filters)
            if not tokens.accept_keyword("and"):
                break

    tokens.accept_punct(";")
    if not tokens.exhausted:
        kind, value = tokens.peek() or ("", "")
        raise SQLParseError(f"unexpected trailing token {value!r}")

    filters = {
        table: (predicates[0] if len(predicates) == 1 else And(predicates))
        for table, predicates in per_table_filters.items()
    }
    query = Query(
        name=name,
        tables=tables,
        joins=joins,
        filters=filters,
        projection=projection,
        sql=sql.strip(),
    )
    query.validate(schema)
    return query


def _parse_or_group(
    tokens: _TokenStream,
    schema: Schema,
    tables: list[str],
    joins: "list[JoinCondition | DisjunctiveJoinCondition]",
    filters: dict[str, list[Predicate]],
) -> None:
    """Parse ``(cond OR cond ...)`` after the opening parenthesis.

    All-filter groups on a single table become one disjunctive filter
    predicate for that table; all-join groups between a single table pair
    become a :class:`DisjunctiveJoinCondition`.  Anything else (mixed
    branches, filters spanning tables, joins spanning pairs) is rejected —
    it falls outside the per-table-conjunct SPJ dialect.
    """
    group_joins: list[JoinCondition] = []
    group_filters: dict[str, list[Predicate]] = {}
    while True:
        _parse_condition(tokens, schema, tables, group_joins, group_filters)
        if not tokens.accept_keyword("or"):
            break
    tokens.expect_punct(")")

    if group_joins and group_filters:
        raise SQLParseError(
            "a parenthesized OR group must not mix join and filter conditions"
        )
    if group_joins:
        if len(group_joins) == 1:
            joins.append(group_joins[0])
            return
        try:
            joins.append(DisjunctiveJoinCondition(group_joins))
        except ValueError as exc:
            raise SQLParseError(str(exc)) from exc
        return
    if len(group_filters) != 1:
        raise SQLParseError(
            "a disjunctive filter must reference exactly one table, "
            f"got {sorted(group_filters)}"
        )
    table, predicates = next(iter(group_filters.items()))
    filters.setdefault(table, []).append(
        predicates[0] if len(predicates) == 1 else Or(predicates)
    )


def _parse_condition(
    tokens: _TokenStream,
    schema: Schema,
    tables: list[str],
    joins: list[JoinCondition],
    filters: dict[str, list[Predicate]],
) -> None:
    kind, value = tokens.next()
    if kind != "ident":
        raise SQLParseError(f"expected column reference in WHERE, found {value!r}")
    left_table, left_column = _resolve_column(schema, tables, value)

    token = tokens.peek()
    if token is None:
        raise SQLParseError("unexpected end of WHERE clause")

    if token[0] == "keyword" and token[1].lower() == "between":
        tokens.next()
        low_kind, low_raw = tokens.next()
        tokens.expect_keyword("and")
        high_kind, high_raw = tokens.next()
        low = _encode_constant(schema, left_table, left_column, low_kind, low_raw)
        high = _encode_constant(schema, left_table, left_column, high_kind, high_raw)
        filters.setdefault(left_table, []).append(
            And([Comparison(left_column, ">=", low), Comparison(left_column, "<=", high)])
        )
        return

    if token[0] == "keyword" and token[1].lower() == "in":
        tokens.next()
        tokens.expect_punct("(")
        values: list[float] = []
        while True:
            value_kind, value_raw = tokens.next()
            values.append(
                _encode_constant(schema, left_table, left_column, value_kind, value_raw)
            )
            if not tokens.accept_punct(","):
                break
        tokens.expect_punct(")")
        filters.setdefault(left_table, []).append(InList(left_column, tuple(values)))
        return

    op_kind, op = tokens.next()
    if op_kind != "op":
        raise SQLParseError(f"expected comparison operator, found {op!r}")

    value_kind, value_raw = tokens.next()
    if value_kind == "ident":
        right_table, right_column = _resolve_column(schema, tables, value_raw)
        if op != "=":
            raise SQLParseError("only equi-joins between columns are supported")
        joins.append(
            JoinCondition(
                left_table=left_table,
                left_column=left_column,
                right_table=right_table,
                right_column=right_column,
            )
        )
        return

    constant = _encode_constant(schema, left_table, left_column, value_kind, value_raw)
    filters.setdefault(left_table, []).append(Comparison(left_column, op, constant))
