"""Deprecated alias of :mod:`repro.sql.predicates`.

The predicate algebra moved to ``repro.sql.predicates`` when it grew the
``AbstractPredicate`` hierarchy (join/filter classification, NNF/CNF
normalisation, canonical hashing).  This module re-exports every pre-move
name so existing imports keep working, and emits a single
:class:`DeprecationWarning` on first import.
"""

from __future__ import annotations

import warnings

from .predicates import (  # noqa: F401
    _EPSILON_SCALE,
    AbstractPredicate,
    And,
    BasePredicate,
    BinaryPredicate,
    BoxCondition,
    ColumnComparison,
    ColumnCondition,
    ColumnRef,
    Comparison,
    CompoundPredicate,
    InList,
    Interval,
    IntervalSet,
    Not,
    Or,
    Predicate,
    TruePredicate,
    box_semantics_exact,
    columns_with_dependencies,
    predicate_from_dict,
    split_conjuncts,
)

__all__ = [
    "Interval",
    "IntervalSet",
    "Predicate",
    "TruePredicate",
    "Comparison",
    "InList",
    "And",
    "Or",
    "Not",
    "ColumnCondition",
    "BoxCondition",
    "box_semantics_exact",
    "columns_with_dependencies",
    "predicate_from_dict",
]

warnings.warn(
    "repro.sql.expressions is deprecated; import from repro.sql.predicates instead",
    DeprecationWarning,
    stacklevel=2,
)
