"""Predicate algebra: intervals, interval sets and filter expressions.

Every selection predicate that HYDRA handles is normalised into a *conjunctive
box condition*: a mapping ``column -> IntervalSet`` where an
:class:`IntervalSet` is a union of disjoint half-open intervals over the
column's internal numeric domain.  This normal form is what the
region-partitioning algorithm (``repro.core.regions``) and the grid baseline
operate on, and it is rich enough to express the SPJ workloads of the paper
(range predicates, equalities, IN-lists and their conjunctions), plus the
disjunctions that arise when a referenced relation's matching regions are
projected onto a foreign-key column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "Interval",
    "IntervalSet",
    "Predicate",
    "TruePredicate",
    "Comparison",
    "InList",
    "And",
    "Or",
    "Not",
    "ColumnCondition",
    "BoxCondition",
    "box_semantics_exact",
    "columns_with_dependencies",
    "predicate_from_dict",
]


def columns_with_dependencies(
    requested: Sequence[str], dependencies: Iterable[str]
) -> list[str]:
    """``requested`` plus any filter-dependency columns not already in it.

    Shared by every filtered-scan layer (tuple generator, datagen relation,
    execution engine) so the column-augmentation rule — requested order
    preserved, missing dependencies appended in sorted order — cannot drift
    between them.
    """
    requested = list(requested)
    present = set(requested)
    return requested + [name for name in sorted(dependencies) if name not in present]

_EPSILON_SCALE = 1e-9


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open interval ``[low, high)`` over the internal numeric domain."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise ValueError("interval bounds must not be NaN")
        # Normalise to float so serialisation is canonical regardless of
        # whether bounds were provided as ints or floats.
        object.__setattr__(self, "low", float(self.low))
        object.__setattr__(self, "high", float(self.high))

    @property
    def is_empty(self) -> bool:
        return self.high <= self.low

    @property
    def width(self) -> float:
        return max(0.0, self.high - self.low)

    def contains(self, value: float) -> bool:
        return self.low <= value < self.high

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.low, other.low), min(self.high, other.high))

    def overlaps(self, other: "Interval") -> bool:
        return max(self.low, other.low) < min(self.high, other.high)

    def midpoint(self) -> float:
        if math.isinf(self.low) and math.isinf(self.high):
            return 0.0
        if math.isinf(self.low):
            return self.high - 1.0
        if math.isinf(self.high):
            return self.low
        return (self.low + self.high) / 2.0

    def representative(self, discrete: bool = True) -> float:
        """A concrete value inside the interval (the lowest usable point)."""
        if self.is_empty:
            raise ValueError("empty interval has no representative")
        if math.isinf(self.low):
            candidate = self.high - 1.0 if not math.isinf(self.high) else 0.0
        else:
            candidate = self.low
        if discrete:
            candidate = math.ceil(candidate)
            if candidate >= self.high:
                raise ValueError(
                    f"interval [{self.low}, {self.high}) contains no integer point"
                )
        return float(candidate)

    def count_integers(self) -> int:
        """Number of integer points inside the interval (may be 0)."""
        if self.is_empty:
            return 0
        low = math.ceil(self.low) if not math.isinf(self.low) else None
        high = math.ceil(self.high) if not math.isinf(self.high) else None
        if low is None or high is None:
            raise ValueError("cannot count integers of an unbounded interval")
        return max(0, high - low)

    def to_dict(self) -> dict[str, float]:
        return {"low": self.low, "high": self.high}

    @classmethod
    def from_dict(cls, payload: Mapping[str, float]) -> "Interval":
        return cls(float(payload["low"]), float(payload["high"]))

    @classmethod
    def everything(cls) -> "Interval":
        return cls(-math.inf, math.inf)

    @classmethod
    def point(cls, value: float, discrete: bool = True) -> "Interval":
        """Interval containing exactly one value (``[v, v+1)`` for discrete)."""
        if discrete:
            return cls(float(value), float(value) + 1.0)
        eps = max(abs(value), 1.0) * _EPSILON_SCALE
        return cls(float(value), float(value) + eps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.low}, {self.high})"


class IntervalSet:
    """A union of disjoint, sorted, half-open intervals.

    Supports the set algebra (intersection, union, difference) needed to split
    the value space into regions, plus point membership and vectorised
    membership tests for predicate evaluation.
    """

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self.intervals: tuple[Interval, ...] = self._normalise(intervals)

    @staticmethod
    def _normalise(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
        items = sorted(
            (interval for interval in intervals if not interval.is_empty),
            key=lambda iv: (iv.low, iv.high),
        )
        merged: list[Interval] = []
        for interval in items:
            if merged and interval.low <= merged[-1].high:
                last = merged[-1]
                merged[-1] = Interval(last.low, max(last.high, interval.high))
            else:
                merged.append(interval)
        return tuple(merged)

    # -- constructors ----------------------------------------------------

    @classmethod
    def everything(cls) -> "IntervalSet":
        return cls([Interval.everything()])

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls([])

    @classmethod
    def single(cls, low: float, high: float) -> "IntervalSet":
        return cls([Interval(low, high)])

    @classmethod
    def point(cls, value: float, discrete: bool = True) -> "IntervalSet":
        return cls([Interval.point(value, discrete=discrete)])

    @classmethod
    def points(cls, values: Iterable[float], discrete: bool = True) -> "IntervalSet":
        return cls([Interval.point(v, discrete=discrete) for v in values])

    # -- predicates ------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.intervals

    @property
    def is_everything(self) -> bool:
        return (
            len(self.intervals) == 1
            and math.isinf(self.intervals[0].low)
            and self.intervals[0].low < 0
            and math.isinf(self.intervals[0].high)
            and self.intervals[0].high > 0
        )

    def contains(self, value: float) -> bool:
        for interval in self.intervals:
            if interval.contains(value):
                return True
            if value < interval.low:
                return False
        return False

    def contains_set(self, other: "IntervalSet") -> bool:
        """True if ``other`` is a subset of this set."""
        return other.subtract(self).is_empty

    def membership_mask(self, values: np.ndarray) -> np.ndarray:
        """Vectorised membership test over an array of values."""
        values = np.asarray(values, dtype=np.float64)
        mask = np.zeros(values.shape, dtype=bool)
        for interval in self.intervals:
            mask |= (values >= interval.low) & (values < interval.high)
        return mask

    # -- algebra ---------------------------------------------------------

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        result: list[Interval] = []
        for a in self.intervals:
            for b in other.intervals:
                piece = a.intersect(b)
                if not piece.is_empty:
                    result.append(piece)
        return IntervalSet(result)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(list(self.intervals) + list(other.intervals))

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        remaining = list(self.intervals)
        for cut in other.intervals:
            next_remaining: list[Interval] = []
            for interval in remaining:
                if not interval.overlaps(cut):
                    next_remaining.append(interval)
                    continue
                left = Interval(interval.low, min(interval.high, cut.low))
                right = Interval(max(interval.low, cut.high), interval.high)
                if not left.is_empty:
                    next_remaining.append(left)
                if not right.is_empty:
                    next_remaining.append(right)
            remaining = next_remaining
        return IntervalSet(remaining)

    def complement(self) -> "IntervalSet":
        return IntervalSet.everything().subtract(self)

    # -- measurements ----------------------------------------------------

    def total_width(self) -> float:
        return sum(interval.width for interval in self.intervals)

    def count_integers(self) -> int:
        return sum(interval.count_integers() for interval in self.intervals)

    def representative(self, discrete: bool = True) -> float:
        for interval in self.intervals:
            try:
                return interval.representative(discrete=discrete)
            except ValueError:
                continue
        raise ValueError("interval set has no representative point")

    def bounds(self) -> tuple[float, float]:
        if self.is_empty:
            raise ValueError("empty interval set has no bounds")
        return self.intervals[0].low, self.intervals[-1].high

    # -- serialisation / dunder -----------------------------------------

    def to_dict(self) -> list[dict[str, float]]:
        return [interval.to_dict() for interval in self.intervals]

    @classmethod
    def from_dict(cls, payload: Sequence[Mapping[str, float]]) -> "IntervalSet":
        return cls([Interval.from_dict(item) for item in payload])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __iter__(self):
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_empty:
            return "IntervalSet(∅)"
        return "IntervalSet(" + " ∪ ".join(repr(iv) for iv in self.intervals) + ")"


# ---------------------------------------------------------------------------
# Predicate AST
# ---------------------------------------------------------------------------


class Predicate:
    """Base class of the filter expression AST."""

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Return a boolean mask for each row of the given column arrays."""
        raise NotImplementedError

    def evaluate_row(self, row: Mapping[str, float]) -> bool:
        """Evaluate against a single row (mapping column -> encoded value)."""
        columns = {name: np.asarray([value], dtype=np.float64) for name, value in row.items()}
        return bool(self.evaluate(columns)[0])

    def columns(self) -> set[str]:
        """The set of column names referenced by the predicate."""
        raise NotImplementedError

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        """Normalise to a conjunctive box condition.

        Raises :class:`ValueError` when the predicate is not expressible as a
        conjunction of per-column interval-set conditions (the workloads the
        paper targets always are).
        """
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or([self, other])


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate (no filter)."""

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        length = len(next(iter(columns.values()))) if columns else 0
        return np.ones(length, dtype=bool)

    def columns(self) -> set[str]:
        return set()

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        return BoxCondition({})

    def to_dict(self) -> dict[str, Any]:
        return {"op": "true"}

    def __repr__(self) -> str:
        return "TRUE"


_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> constant`` with a numeric (encoded) constant."""

    column: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        values = np.asarray(columns[self.column], dtype=np.float64)
        if self.op == "=":
            return values == self.value
        if self.op == "!=":
            return values != self.value
        if self.op == "<":
            return values < self.value
        if self.op == "<=":
            return values <= self.value
        if self.op == ">":
            return values > self.value
        return values >= self.value

    def columns(self) -> set[str]:
        return {self.column}

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        discrete = True
        if discrete_columns is not None:
            discrete = discrete_columns.get(self.column, True)
        step = 1.0 if discrete else max(abs(self.value), 1.0) * _EPSILON_SCALE
        if self.op == "=":
            interval_set = IntervalSet.point(self.value, discrete=discrete)
        elif self.op == "!=":
            interval_set = IntervalSet.point(self.value, discrete=discrete).complement()
        elif self.op == "<":
            interval_set = IntervalSet.single(-math.inf, self.value)
        elif self.op == "<=":
            interval_set = IntervalSet.single(-math.inf, self.value + step)
        elif self.op == ">":
            interval_set = IntervalSet.single(self.value + step, math.inf)
        else:  # >=
            interval_set = IntervalSet.single(self.value, math.inf)
        return BoxCondition({self.column: interval_set})

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.op, "column": self.column, "value": self.value}

    def __repr__(self) -> str:
        return f"{self.column} {self.op} {self.value}"


@dataclass(frozen=True)
class InList(Predicate):
    """``column IN (v1, v2, ...)`` over encoded constants."""

    column: str
    values: tuple[float, ...]

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        values = np.asarray(columns[self.column], dtype=np.float64)
        return np.isin(values, np.asarray(self.values, dtype=np.float64))

    def columns(self) -> set[str]:
        return {self.column}

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        discrete = True
        if discrete_columns is not None:
            discrete = discrete_columns.get(self.column, True)
        return BoxCondition({self.column: IntervalSet.points(self.values, discrete=discrete)})

    def to_dict(self) -> dict[str, Any]:
        return {"op": "in", "column": self.column, "values": list(self.values)}

    def __repr__(self) -> str:
        return f"{self.column} IN {self.values}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of child predicates."""

    children: tuple[Predicate, ...]

    def __init__(self, children: Iterable[Predicate]):
        object.__setattr__(self, "children", tuple(children))

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        if not self.children:
            return TruePredicate().evaluate(columns)
        mask = self.children[0].evaluate(columns)
        for child in self.children[1:]:
            mask = mask & child.evaluate(columns)
        return mask

    def columns(self) -> set[str]:
        names: set[str] = set()
        for child in self.children:
            names |= child.columns()
        return names

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        box = BoxCondition({})
        for child in self.children:
            box = box.intersect(child.to_box(discrete_columns))
        return box

    def to_dict(self) -> dict[str, Any]:
        return {"op": "and", "children": [child.to_dict() for child in self.children]}

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(child) for child in self.children) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of child predicates.

    Only single-column disjunctions (which normalise to an interval-set on
    that column) can be converted to a box condition.
    """

    children: tuple[Predicate, ...]

    def __init__(self, children: Iterable[Predicate]):
        object.__setattr__(self, "children", tuple(children))

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        if not self.children:
            length = len(next(iter(columns.values()))) if columns else 0
            return np.zeros(length, dtype=bool)
        mask = self.children[0].evaluate(columns)
        for child in self.children[1:]:
            mask = mask | child.evaluate(columns)
        return mask

    def columns(self) -> set[str]:
        names: set[str] = set()
        for child in self.children:
            names |= child.columns()
        return names

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        if not self.children:
            # The empty disjunction evaluates to all-false; ``BoxCondition({})``
            # would be the match-all box, silently flipping the semantics for
            # every box-routed consumer (filter pushdown, summary counting).
            return BoxCondition.never()
        referenced = self.columns()
        if len(referenced) > 1:
            raise ValueError(
                "disjunctions across multiple columns cannot be normalised to a box"
            )
        column = next(iter(referenced)) if referenced else None
        if column is None:
            # Column-free children have constant verdicts (TruePredicate,
            # nested empty disjunctions): the disjunction holds iff any child
            # normalises to a satisfiable box.
            if any(not child.to_box(discrete_columns).is_empty for child in self.children):
                return BoxCondition({})
            return BoxCondition.never()
        combined = IntervalSet.empty()
        for child in self.children:
            child_box = child.to_box(discrete_columns)
            if child_box.is_empty:
                # An unsatisfiable disjunct (e.g. a nested empty disjunction)
                # contributes nothing; asking it for the column's condition
                # would return the unconstrained interval set and silently
                # flip the disjunction to match-all.
                continue
            combined = combined.union(child_box.condition_for(column))
        return BoxCondition({column: combined})

    def to_dict(self) -> dict[str, Any]:
        return {"op": "or", "children": [child.to_dict() for child in self.children]}

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(child) for child in self.children) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a single-column predicate."""

    child: Predicate

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        return ~self.child.evaluate(columns)

    def columns(self) -> set[str]:
        return self.child.columns()

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        referenced = self.child.columns()
        if len(referenced) != 1:
            raise ValueError("only single-column negations can be normalised to a box")
        column = next(iter(referenced))
        child_box = self.child.to_box(discrete_columns)
        if not child_box.satisfiable:
            # NOT of a flag-unsatisfiable child (e.g. AND with an empty
            # disjunction) holds everywhere; the child's per-column intervals
            # are irrelevant and complementing them would be unsound.
            return BoxCondition({})
        return BoxCondition({column: child_box.condition_for(column).complement()})

    def to_dict(self) -> dict[str, Any]:
        return {"op": "not", "child": self.child.to_dict()}

    def __repr__(self) -> str:
        return f"NOT ({self.child!r})"


# ---------------------------------------------------------------------------
# Conjunctive box conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnCondition:
    """A single column restricted to an interval set (used for reporting)."""

    column: str
    intervals: IntervalSet


class BoxCondition:
    """A conjunctive condition: each constrained column limited to an interval set.

    Columns not present are unconstrained.  This is the canonical constraint
    form consumed by the LP formulator: every workload predicate, and every
    predicate borrowed across a key/foreign-key join, ends up as one of these.

    ``satisfiable=False`` marks the *falsum* box (no tuple can ever match) —
    needed because a column-free contradiction such as the empty disjunction
    has no per-column interval set to carry its emptiness.
    """

    __slots__ = ("conditions", "satisfiable")

    def __init__(self, conditions: Mapping[str, IntervalSet], satisfiable: bool = True):
        cleaned = {
            column: interval_set
            for column, interval_set in conditions.items()
            if not interval_set.is_everything
        }
        self.conditions: dict[str, IntervalSet] = dict(sorted(cleaned.items()))
        self.satisfiable: bool = bool(satisfiable)

    @classmethod
    def never(cls) -> "BoxCondition":
        """The unsatisfiable box: matches no tuple on any relation."""
        return cls({}, satisfiable=False)

    # -- basic accessors -------------------------------------------------

    @property
    def is_unconstrained(self) -> bool:
        return self.satisfiable and not self.conditions

    @property
    def is_empty(self) -> bool:
        return not self.satisfiable or any(
            interval_set.is_empty for interval_set in self.conditions.values()
        )

    def columns(self) -> set[str]:
        return set(self.conditions)

    def condition_for(self, column: str) -> IntervalSet:
        return self.conditions.get(column, IntervalSet.everything())

    # -- algebra ---------------------------------------------------------

    def intersect(self, other: "BoxCondition") -> "BoxCondition":
        conditions: dict[str, IntervalSet] = dict(self.conditions)
        for column, interval_set in other.conditions.items():
            if column in conditions:
                conditions[column] = conditions[column].intersect(interval_set)
            else:
                conditions[column] = interval_set
        return BoxCondition(conditions, satisfiable=self.satisfiable and other.satisfiable)

    def with_condition(self, column: str, intervals: IntervalSet) -> "BoxCondition":
        conditions = dict(self.conditions)
        conditions[column] = self.condition_for(column).intersect(intervals)
        return BoxCondition(conditions, satisfiable=self.satisfiable)

    # -- evaluation ------------------------------------------------------

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        length = len(next(iter(columns.values()))) if columns else 0
        if not self.satisfiable:
            return np.zeros(length, dtype=bool)
        mask = np.ones(length, dtype=bool)
        for column, interval_set in self.conditions.items():
            mask &= interval_set.membership_mask(np.asarray(columns[column]))
        return mask

    def contains_point(self, point: Mapping[str, float]) -> bool:
        if not self.satisfiable:
            return False
        for column, interval_set in self.conditions.items():
            if column not in point:
                return False
            if not interval_set.contains(point[column]):
                return False
        return True

    # -- serialisation / dunder -----------------------------------------

    def to_predicate(self) -> Predicate:
        """Convert back to a predicate AST (for execution / verification)."""
        if not self.satisfiable:
            return Or(())
        children: list[Predicate] = []
        for column, interval_set in self.conditions.items():
            column_children: list[Predicate] = []
            for interval in interval_set:
                parts: list[Predicate] = []
                if not math.isinf(interval.low):
                    parts.append(Comparison(column, ">=", interval.low))
                if not math.isinf(interval.high):
                    parts.append(Comparison(column, "<", interval.high))
                if not parts:
                    parts.append(TruePredicate())
                column_children.append(And(parts) if len(parts) > 1 else parts[0])
            if len(column_children) == 1:
                children.append(column_children[0])
            else:
                children.append(Or(column_children))
        if not children:
            return TruePredicate()
        if len(children) == 1:
            return children[0]
        return And(children)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            column: interval_set.to_dict()
            for column, interval_set in self.conditions.items()
        }
        if not self.satisfiable:
            payload["__unsatisfiable__"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BoxCondition":
        return cls(
            {
                column: IntervalSet.from_dict(item)
                for column, item in payload.items()
                if column != "__unsatisfiable__"
            },
            satisfiable=not payload.get("__unsatisfiable__", False),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoxCondition):
            return NotImplemented
        return self.satisfiable == other.satisfiable and self.conditions == other.conditions

    def __hash__(self) -> int:
        return hash((self.satisfiable, tuple(self.conditions.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.satisfiable:
            return "BoxCondition(FALSE)"
        if self.is_unconstrained:
            return "BoxCondition(TRUE)"
        parts = [f"{column} ∈ {interval_set!r}" for column, interval_set in self.conditions.items()]
        return "BoxCondition(" + " ∧ ".join(parts) + ")"


# ---------------------------------------------------------------------------
# Box-conversion exactness
# ---------------------------------------------------------------------------


def box_semantics_exact(predicate: Predicate, discrete_columns: Mapping[str, bool]) -> bool:
    """Whether ``predicate.to_box(discrete_columns)`` is *exactly* equivalent.

    ``discrete_columns`` maps every known column of the relation to whether
    its internal domain is discrete (integral); a column absent from the
    mapping is unknown and makes the predicate inexact, so that unknown
    columns surface as errors on every execution route instead of being
    silently counted against a summary default value.

    Exactness composes: intersections/unions/complements of exact per-column
    interval sets stay exact, so only the leaves matter.  A comparison on a
    discrete column is exact only for integral constants (``qty = 2.5``
    matches nothing, but its box ``[2.5, 3.5)`` matches 3); on a continuous
    column only ``<`` and ``>=`` avoid the epsilon approximation.
    """
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, Comparison):
        if predicate.column not in discrete_columns:
            return False
        if predicate.op in ("<", ">="):
            return True
        # =, !=, <= and > round the bound to the next representable point.
        return (
            discrete_columns[predicate.column]
            and float(predicate.value).is_integer()
        )
    if isinstance(predicate, InList):
        return (
            predicate.column in discrete_columns
            and discrete_columns[predicate.column]
            and all(float(value).is_integer() for value in predicate.values)
        )
    if isinstance(predicate, And):
        return all(box_semantics_exact(child, discrete_columns) for child in predicate.children)
    if isinstance(predicate, Or):
        # The empty disjunction normalises to the unsatisfiable box, which is
        # exactly its all-false evaluation semantics.
        return all(box_semantics_exact(child, discrete_columns) for child in predicate.children)
    if isinstance(predicate, Not):
        return box_semantics_exact(predicate.child, discrete_columns)
    return False


# ---------------------------------------------------------------------------
# Deserialisation
# ---------------------------------------------------------------------------


def predicate_from_dict(payload: Mapping[str, Any]) -> Predicate:
    """Inverse of :meth:`Predicate.to_dict` for every AST node type."""
    op = payload["op"]
    if op == "true":
        return TruePredicate()
    if op == "in":
        return InList(payload["column"], tuple(float(v) for v in payload["values"]))
    if op == "and":
        return And([predicate_from_dict(child) for child in payload["children"]])
    if op == "or":
        return Or([predicate_from_dict(child) for child in payload["children"]])
    if op == "not":
        return Not(predicate_from_dict(payload["child"]))
    if op in _COMPARISON_OPS:
        return Comparison(payload["column"], op, float(payload["value"]))
    raise ValueError(f"unknown predicate op {op!r}")
