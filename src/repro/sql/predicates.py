"""Predicate algebra: intervals, boxes and the filter/join expression AST.

This module is the canonical home of HYDRA's predicate layer.  It has three
floors, bottom to top:

* **Interval machinery** — :class:`Interval` and :class:`IntervalSet` implement
  the half-open interval arithmetic over the internal numeric domain that the
  region-partitioning algorithm (``repro.core.regions``) and the grid baseline
  operate on.
* **Box conditions** — :class:`BoxCondition` is the conjunctive normal form
  every selection predicate is lowered to for LP formulation and summary
  arithmetic: a mapping ``column -> IntervalSet`` (columns absent are
  unconstrained), rich enough for the SPJ workloads of the paper plus the
  disjunctions that arise when a referenced relation's matching regions are
  projected onto a foreign-key column.
* **The predicate AST** — an :class:`AbstractPredicate` hierarchy with three
  families: *base* predicates (:class:`TruePredicate`, :class:`Comparison`,
  :class:`InList`) compare one column against constants, the *binary*
  predicate (:class:`ColumnComparison`) compares two columns — the shape of a
  join condition — and *compound* predicates (:class:`And`, :class:`Or`,
  :class:`Not`) combine children.  Every node supports vectorised evaluation,
  column traversal (:meth:`AbstractPredicate.itercolumns`), join/filter
  classification (:meth:`AbstractPredicate.is_join`), NNF/CNF normalisation
  and canonical hashing/equality.

``repro.sql.expressions`` re-exports everything here for backwards
compatibility and emits a :class:`DeprecationWarning` on import.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "Interval",
    "IntervalSet",
    "ColumnRef",
    "AbstractPredicate",
    "Predicate",
    "BasePredicate",
    "BinaryPredicate",
    "CompoundPredicate",
    "TruePredicate",
    "Comparison",
    "InList",
    "ColumnComparison",
    "And",
    "Or",
    "Not",
    "ColumnCondition",
    "BoxCondition",
    "box_semantics_exact",
    "columns_with_dependencies",
    "predicate_from_dict",
    "split_conjuncts",
]


def columns_with_dependencies(
    requested: Sequence[str], dependencies: Iterable[str]
) -> list[str]:
    """Return ``requested`` plus any filter-dependency columns not already in it.

    Shared by every filtered-scan layer (tuple generator, datagen relation,
    execution engine) so the column-augmentation rule — requested order
    preserved, missing dependencies appended in sorted order — cannot drift
    between them.
    """
    requested = list(requested)
    present = set(requested)
    return requested + [name for name in sorted(dependencies) if name not in present]


_EPSILON_SCALE = 1e-9


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open interval ``[low, high)`` over the internal numeric domain."""

    low: float
    high: float

    def __post_init__(self) -> None:
        """Reject NaN bounds and normalise both bounds to ``float``."""
        if math.isnan(self.low) or math.isnan(self.high):
            raise ValueError(
                f"interval bounds must not be NaN (got [{self.low}, {self.high}))"
            )
        # Normalise to float so serialisation is canonical regardless of
        # whether bounds were provided as ints or floats.
        object.__setattr__(self, "low", float(self.low))
        object.__setattr__(self, "high", float(self.high))

    @property
    def is_empty(self) -> bool:
        """Whether the interval contains no point (``high <= low``)."""
        return self.high <= self.low

    @property
    def width(self) -> float:
        """The interval's length (0 for empty intervals)."""
        return max(0.0, self.high - self.low)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside ``[low, high)``."""
        return self.low <= value < self.high

    def intersect(self, other: "Interval") -> "Interval":
        """The (possibly empty) intersection with ``other``."""
        return Interval(max(self.low, other.low), min(self.high, other.high))

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point."""
        return max(self.low, other.low) < min(self.high, other.high)

    def midpoint(self) -> float:
        """A central point of the interval (finite even for unbounded ends)."""
        if math.isinf(self.low) and math.isinf(self.high):
            return 0.0
        if math.isinf(self.low):
            return self.high - 1.0
        if math.isinf(self.high):
            return self.low
        return (self.low + self.high) / 2.0

    def representative(self, discrete: bool = True) -> float:
        """A concrete value inside the interval (the lowest usable point)."""
        if self.is_empty:
            raise ValueError("empty interval has no representative")
        if math.isinf(self.low):
            candidate = self.high - 1.0 if not math.isinf(self.high) else 0.0
        else:
            candidate = self.low
        if discrete:
            candidate = math.ceil(candidate)
            if candidate >= self.high:
                raise ValueError(
                    f"interval [{self.low}, {self.high}) contains no integer point"
                )
        return float(candidate)

    def count_integers(self) -> int:
        """Number of integer points inside the interval (may be 0)."""
        if self.is_empty:
            return 0
        low = math.ceil(self.low) if not math.isinf(self.low) else None
        high = math.ceil(self.high) if not math.isinf(self.high) else None
        if low is None or high is None:
            raise ValueError("cannot count integers of an unbounded interval")
        return max(0, high - low)

    def sum_integers(self) -> float:
        """Sum of the integer points inside the interval (0.0 when empty).

        Evaluated as an arithmetic series, so the summary fast path can sum a
        primary-key column over a pk window without enumerating indices.
        """
        count = self.count_integers()
        if count == 0:
            return 0.0
        first = float(math.ceil(self.low))
        last = first + count - 1
        return (first + last) * count / 2.0

    def to_dict(self) -> dict[str, float]:
        """Serialise to a ``{"low": ..., "high": ...}`` mapping."""
        return {"low": self.low, "high": self.high}

    @classmethod
    def from_dict(cls, payload: Mapping[str, float]) -> "Interval":
        """Reconstruct an interval from :meth:`to_dict` output."""
        return cls(float(payload["low"]), float(payload["high"]))

    @classmethod
    def everything(cls) -> "Interval":
        """The unbounded interval covering the whole domain."""
        return cls(-math.inf, math.inf)

    @classmethod
    def point(cls, value: float, discrete: bool = True) -> "Interval":
        """Interval containing exactly one value (``[v, v+1)`` for discrete)."""
        if discrete:
            return cls(float(value), float(value) + 1.0)
        eps = max(abs(value), 1.0) * _EPSILON_SCALE
        return cls(float(value), float(value) + eps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Render as ``[low, high)``."""
        return f"[{self.low}, {self.high})"


class IntervalSet:
    """A union of disjoint, sorted, half-open intervals.

    Supports the set algebra (intersection, union, difference) needed to split
    the value space into regions, plus point membership and vectorised
    membership tests for predicate evaluation.
    """

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        """Normalise ``intervals`` into a sorted, disjoint, merged tuple."""
        self.intervals: tuple[Interval, ...] = self._normalise(intervals)

    @staticmethod
    def _normalise(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
        """Drop empty intervals, then sort and merge overlapping ones.

        NaN bounds are rejected with a :class:`ValueError`: a NaN interval is
        neither empty nor ordered, so letting one through would silently
        produce an unsatisfiable (and unmergeable) set.
        """
        items = []
        for interval in intervals:
            if math.isnan(interval.low) or math.isnan(interval.high):
                raise ValueError(
                    f"interval bounds must not be NaN (got {interval!r})"
                )
            if not interval.is_empty:
                items.append(interval)
        items.sort(key=lambda iv: (iv.low, iv.high))
        merged: list[Interval] = []
        for interval in items:
            if merged and interval.low <= merged[-1].high:
                last = merged[-1]
                merged[-1] = Interval(last.low, max(last.high, interval.high))
            else:
                merged.append(interval)
        return tuple(merged)

    # -- constructors ----------------------------------------------------

    @classmethod
    def everything(cls) -> "IntervalSet":
        """The set covering the whole domain."""
        return cls([Interval.everything()])

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set."""
        return cls([])

    @classmethod
    def single(cls, low: float, high: float) -> "IntervalSet":
        """The set of one interval ``[low, high)``."""
        return cls([Interval(low, high)])

    @classmethod
    def point(cls, value: float, discrete: bool = True) -> "IntervalSet":
        """The set containing exactly one value."""
        return cls([Interval.point(value, discrete=discrete)])

    @classmethod
    def points(cls, values: Iterable[float], discrete: bool = True) -> "IntervalSet":
        """The set containing exactly the given values."""
        return cls([Interval.point(v, discrete=discrete) for v in values])

    # -- predicates ------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether the set contains no interval."""
        return not self.intervals

    @property
    def is_everything(self) -> bool:
        """Whether the set is the single unbounded interval."""
        return (
            len(self.intervals) == 1
            and math.isinf(self.intervals[0].low)
            and self.intervals[0].low < 0
            and math.isinf(self.intervals[0].high)
            and self.intervals[0].high > 0
        )

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside any interval of the set."""
        for interval in self.intervals:
            if interval.contains(value):
                return True
            if value < interval.low:
                return False
        return False

    def contains_set(self, other: "IntervalSet") -> bool:
        """True if ``other`` is a subset of this set."""
        return other.subtract(self).is_empty

    def membership_mask(self, values: NDArray[Any]) -> NDArray[Any]:
        """Vectorised membership test over an array of values."""
        values = np.asarray(values, dtype=np.float64)
        mask = np.zeros(values.shape, dtype=bool)
        for interval in self.intervals:
            mask |= (values >= interval.low) & (values < interval.high)
        return mask

    # -- algebra ---------------------------------------------------------

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """The intersection with ``other``."""
        result: list[Interval] = []
        for a in self.intervals:
            for b in other.intervals:
                piece = a.intersect(b)
                if not piece.is_empty:
                    result.append(piece)
        return IntervalSet(result)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """The union with ``other``."""
        return IntervalSet(list(self.intervals) + list(other.intervals))

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        """The set difference ``self - other``."""
        remaining = list(self.intervals)
        for cut in other.intervals:
            next_remaining: list[Interval] = []
            for interval in remaining:
                if not interval.overlaps(cut):
                    next_remaining.append(interval)
                    continue
                left = Interval(interval.low, min(interval.high, cut.low))
                right = Interval(max(interval.low, cut.high), interval.high)
                if not left.is_empty:
                    next_remaining.append(left)
                if not right.is_empty:
                    next_remaining.append(right)
            remaining = next_remaining
        return IntervalSet(remaining)

    def complement(self) -> "IntervalSet":
        """The complement with respect to the whole domain."""
        return IntervalSet.everything().subtract(self)

    # -- measurements ----------------------------------------------------

    def total_width(self) -> float:
        """Sum of the interval widths."""
        return sum(interval.width for interval in self.intervals)

    def count_integers(self) -> int:
        """Number of integer points inside the set."""
        return sum(interval.count_integers() for interval in self.intervals)

    def sum_integers(self) -> float:
        """Sum of the integer points inside the set (intervals are disjoint)."""
        return sum(interval.sum_integers() for interval in self.intervals)

    def representative(self, discrete: bool = True) -> float:
        """A concrete value inside the set (the lowest usable point)."""
        for interval in self.intervals:
            try:
                return interval.representative(discrete=discrete)
            except ValueError:
                continue
        raise ValueError("interval set has no representative point")

    def bounds(self) -> tuple[float, float]:
        """The overall ``(low, high)`` envelope of the set."""
        if self.is_empty:
            raise ValueError("empty interval set has no bounds")
        return self.intervals[0].low, self.intervals[-1].high

    # -- serialisation / dunder -----------------------------------------

    def to_dict(self) -> list[dict[str, float]]:
        """Serialise to a list of interval mappings."""
        return [interval.to_dict() for interval in self.intervals]

    @classmethod
    def from_dict(cls, payload: Sequence[Mapping[str, float]]) -> "IntervalSet":
        """Reconstruct a set from :meth:`to_dict` output."""
        return cls([Interval.from_dict(item) for item in payload])

    def __eq__(self, other: object) -> bool:
        """Structural equality on the normalised interval tuples."""
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self.intervals == other.intervals

    def __hash__(self) -> int:
        """Hash of the normalised interval tuple."""
        return hash(self.intervals)

    def __iter__(self) -> Iterator[Interval]:
        """Iterate over the member intervals in order."""
        return iter(self.intervals)

    def __len__(self) -> int:
        """Number of disjoint intervals in the set."""
        return len(self.intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Render as a union of intervals."""
        if self.is_empty:
            return "IntervalSet(∅)"
        return "IntervalSet(" + " ∪ ".join(repr(iv) for iv in self.intervals) + ")"


# ---------------------------------------------------------------------------
# Column references
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A (possibly table-qualified) column reference inside a predicate.

    Base predicates compare an *unqualified* column (``table`` is ``None``;
    the owning table is implied by where the predicate is attached), while
    the binary :class:`ColumnComparison` — the join shape — references two
    qualified columns.  :meth:`AbstractPredicate.tables` and the join/filter
    classification are derived from the qualified references.
    """

    table: str | None
    column: str

    @property
    def qualified(self) -> bool:
        """Whether the reference names its table."""
        return self.table is not None

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a ``{"table": ..., "column": ...}`` mapping."""
        return {"table": self.table, "column": self.column}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ColumnRef":
        """Reconstruct a reference from :meth:`to_dict` output."""
        return cls(payload.get("table"), payload["column"])

    def __str__(self) -> str:
        """Render as ``table.column`` (or bare ``column`` when unqualified)."""
        return f"{self.table}.{self.column}" if self.table else self.column


# ---------------------------------------------------------------------------
# Predicate AST
# ---------------------------------------------------------------------------


class AbstractPredicate:
    """Root of the predicate AST.

    Concrete nodes fall into three families — :class:`BasePredicate` leaves,
    the :class:`BinaryPredicate` column-to-column comparison, and
    :class:`CompoundPredicate` combinators — and share this interface:
    vectorised evaluation, column/table traversal, join vs filter
    classification, box normalisation, NNF/CNF rewriting and canonical
    hashing/equality.
    """

    def evaluate(self, columns: Mapping[str, NDArray[Any]]) -> NDArray[Any]:
        """Return a boolean mask for each row of the given column arrays."""
        raise NotImplementedError

    def evaluate_row(self, row: Mapping[str, float]) -> bool:
        """Evaluate against a single row (mapping column -> encoded value)."""
        columns = {name: np.asarray([value], dtype=np.float64) for name, value in row.items()}
        return bool(self.evaluate(columns)[0])

    def columns(self) -> set[str]:
        """The set of unqualified column names referenced by the predicate."""
        return {ref.column for ref in self.itercolumns()}

    def itercolumns(self) -> Iterator[ColumnRef]:
        """Yield every column reference of the predicate, leaves first."""
        raise NotImplementedError

    def tables(self) -> frozenset[str]:
        """All tables named by qualified column references in the predicate."""
        return frozenset(
            ref.table for ref in self.itercolumns() if ref.table is not None
        )

    def is_join(self) -> bool:
        """Whether the predicate relates columns of more than one table.

        Mirrors the PostBOUND ``qal`` classification: a predicate is a join
        exactly when its qualified column references span at least two
        distinct tables; everything else — including column-free constants —
        is a filter.
        """
        return len(self.tables()) > 1

    def is_filter(self) -> bool:
        """Whether the predicate restricts (at most) a single table."""
        return not self.is_join()

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        """Normalise to a conjunctive box condition.

        Raises :class:`ValueError` when the predicate is not expressible as a
        conjunction of per-column interval-set conditions (the workloads the
        paper targets always are).
        """
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        """Serialise the node to a JSON-compatible mapping."""
        raise NotImplementedError

    # -- normalisation ----------------------------------------------------

    def negated(self) -> "AbstractPredicate":
        """The logical negation, already in negation normal form."""
        raise NotImplementedError

    def to_nnf(self) -> "AbstractPredicate":
        """Rewrite into negation normal form.

        In NNF, ``Not`` appears only directly above a leaf that cannot absorb
        the negation itself (an :class:`InList`); comparisons flip their
        operator instead and De Morgan pushes negations through ``And``/``Or``.
        The rewrite is semantics-preserving row for row.
        """
        return self

    def to_cnf(self) -> "AbstractPredicate":
        """Rewrite into conjunctive normal form (an And of Or-clauses).

        Built on :meth:`to_nnf` followed by distributing disjunctions over
        conjunctions.  Degenerate shapes collapse: zero clauses yield
        :class:`TruePredicate`, a single clause is returned bare.  Raises
        :class:`ValueError` when distribution would exceed
        ``{max_clauses}`` clauses (exponential blowup guard).
        """
        clauses = _cnf_clauses(self.to_nnf())
        if clauses is None:
            return Or(())
        predicates: list[AbstractPredicate] = []
        for clause in clauses:
            if len(clause) == 1:
                predicates.append(clause[0])
            else:
                predicates.append(Or(clause))
        if not predicates:
            return TruePredicate()
        if len(predicates) == 1:
            return predicates[0]
        return And(predicates)

    # -- canonical form ---------------------------------------------------

    def canonical(self) -> "AbstractPredicate":
        """A canonical structural form for hashing and equality.

        Nested conjunctions/disjunctions are flattened, neutral elements
        dropped, duplicate children merged and children sorted by their
        canonical key; symmetric column comparisons order their operands.
        Two predicates that differ only in such presentation details have
        equal canonical forms.
        """
        return self

    def canonical_key(self) -> str:
        """A deterministic string key of the canonical form."""
        return json.dumps(self.canonical().to_dict(), sort_keys=True)

    def canonical_hash(self) -> str:
        """The sha256 hex digest of :meth:`canonical_key`."""
        return hashlib.sha256(self.canonical_key().encode("utf-8")).hexdigest()

    def equivalent(self, other: "AbstractPredicate") -> bool:
        """Whether the canonical forms of the two predicates coincide."""
        return self.canonical_key() == other.canonical_key()

    # -- sugar ------------------------------------------------------------

    def __and__(self, other: "AbstractPredicate") -> "AbstractPredicate":
        """Conjunction sugar: ``a & b`` builds ``And([a, b])``."""
        return And([self, other])

    def __or__(self, other: "AbstractPredicate") -> "AbstractPredicate":
        """Disjunction sugar: ``a | b`` builds ``Or([a, b])``."""
        return Or([self, other])

    def __invert__(self) -> "AbstractPredicate":
        """Negation sugar: ``~a`` builds ``Not(a)``."""
        return Not(self)

    def __str__(self) -> str:
        """A human-readable SQL-flavoured rendering (defaults to ``repr``)."""
        return repr(self)


#: Backwards-compatible alias — the pre-refactor name of the AST root.
Predicate = AbstractPredicate


class BasePredicate(AbstractPredicate):
    """A leaf predicate: one (unqualified) column against constants."""


class BinaryPredicate(AbstractPredicate):
    """A predicate relating two column references — the join shape."""


class CompoundPredicate(AbstractPredicate):
    """A predicate combining child predicates (``And``/``Or``/``Not``)."""


@dataclass(frozen=True)
class TruePredicate(BasePredicate):
    """The always-true predicate (no filter)."""

    def evaluate(self, columns: Mapping[str, NDArray[Any]]) -> NDArray[Any]:
        """Return an all-true mask of the input length."""
        length = len(next(iter(columns.values()))) if columns else 0
        return np.ones(length, dtype=bool)

    def itercolumns(self) -> Iterator[ColumnRef]:
        """Yield nothing: the constant references no column."""
        return iter(())

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        """Normalise to the unconstrained (match-all) box."""
        return BoxCondition({})

    def to_dict(self) -> dict[str, Any]:
        """Serialise as ``{"op": "true"}``."""
        return {"op": "true"}

    def negated(self) -> AbstractPredicate:
        """Negate to the canonical *false* predicate (the empty disjunction)."""
        return Or(())

    def __repr__(self) -> str:
        """Render as ``TRUE``."""
        return "TRUE"


_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

_NEGATED_OPS = {"=": "!=", "!=": "=", "<": ">=", ">=": "<", "<=": ">", ">": "<="}

#: Operator swap when the two operands of a column comparison are exchanged.
_MIRRORED_OPS = {"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}


@dataclass(frozen=True)
class Comparison(BasePredicate):
    """``column <op> constant`` with a numeric (encoded) constant."""

    column: str
    op: str
    value: float

    def __post_init__(self) -> None:
        """Validate the comparison operator."""
        if self.op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, columns: Mapping[str, NDArray[Any]]) -> NDArray[Any]:
        """Compare the column array element-wise against the constant."""
        values = np.asarray(columns[self.column], dtype=np.float64)
        if self.op == "=":
            return values == self.value
        if self.op == "!=":
            return values != self.value
        if self.op == "<":
            return values < self.value
        if self.op == "<=":
            return values <= self.value
        if self.op == ">":
            return values > self.value
        return values >= self.value

    def itercolumns(self) -> Iterator[ColumnRef]:
        """Yield the single (unqualified) column reference."""
        yield ColumnRef(None, self.column)

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        """Lower the comparison to a single-column interval-set condition."""
        discrete = True
        if discrete_columns is not None:
            discrete = discrete_columns.get(self.column, True)
        step = 1.0 if discrete else max(abs(self.value), 1.0) * _EPSILON_SCALE
        if self.op == "=":
            interval_set = IntervalSet.point(self.value, discrete=discrete)
        elif self.op == "!=":
            interval_set = IntervalSet.point(self.value, discrete=discrete).complement()
        elif self.op == "<":
            interval_set = IntervalSet.single(-math.inf, self.value)
        elif self.op == "<=":
            interval_set = IntervalSet.single(-math.inf, self.value + step)
        elif self.op == ">":
            interval_set = IntervalSet.single(self.value + step, math.inf)
        else:  # >=
            interval_set = IntervalSet.single(self.value, math.inf)
        return BoxCondition({self.column: interval_set})

    def to_dict(self) -> dict[str, Any]:
        """Serialise as ``{"op": <op>, "column": ..., "value": ...}``."""
        return {"op": self.op, "column": self.column, "value": self.value}

    def negated(self) -> AbstractPredicate:
        """Negate by flipping the comparison operator."""
        return Comparison(self.column, _NEGATED_OPS[self.op], self.value)

    def __repr__(self) -> str:
        """Render as ``column <op> value``."""
        return f"{self.column} {self.op} {self.value}"


@dataclass(frozen=True)
class InList(BasePredicate):
    """``column IN (v1, v2, ...)`` over encoded constants."""

    column: str
    values: tuple[float, ...]

    def evaluate(self, columns: Mapping[str, NDArray[Any]]) -> NDArray[Any]:
        """Test column membership in the constant list element-wise."""
        values = np.asarray(columns[self.column], dtype=np.float64)
        return np.isin(values, np.asarray(self.values, dtype=np.float64))

    def itercolumns(self) -> Iterator[ColumnRef]:
        """Yield the single (unqualified) column reference."""
        yield ColumnRef(None, self.column)

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        """Lower the IN-list to a union of point intervals on the column."""
        discrete = True
        if discrete_columns is not None:
            discrete = discrete_columns.get(self.column, True)
        return BoxCondition({self.column: IntervalSet.points(self.values, discrete=discrete)})

    def to_dict(self) -> dict[str, Any]:
        """Serialise as ``{"op": "in", "column": ..., "values": [...]}``."""
        return {"op": "in", "column": self.column, "values": list(self.values)}

    def negated(self) -> AbstractPredicate:
        """Negate to a ``Not`` literal (IN-lists cannot absorb negation)."""
        return Not(self)

    def canonical(self) -> AbstractPredicate:
        """Sort and deduplicate the constant list."""
        ordered = tuple(sorted(set(self.values)))
        return self if ordered == self.values else InList(self.column, ordered)

    def __repr__(self) -> str:
        """Render as ``column IN (...)``."""
        return f"{self.column} IN {self.values}"


@dataclass(frozen=True)
class ColumnComparison(BinaryPredicate):
    """``left <op> right`` between two (qualified) column references.

    This is the algebraic shape of a join condition: when the two references
    name different tables, :meth:`AbstractPredicate.is_join` classifies the
    predicate as a join edge and the join graph
    (:mod:`repro.plans.joingraph`) consumes it directly.
    """

    left: ColumnRef
    op: str
    right: ColumnRef

    def __post_init__(self) -> None:
        """Validate the comparison operator."""
        if self.op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def _resolve(self, columns: Mapping[str, NDArray[Any]], ref: ColumnRef) -> NDArray[Any]:
        """Fetch one operand array by qualified, then bare, column name."""
        if ref.table is not None:
            qualified = f"{ref.table}.{ref.column}"
            if qualified in columns:
                return np.asarray(columns[qualified], dtype=np.float64)
        return np.asarray(columns[ref.column], dtype=np.float64)

    def evaluate(self, columns: Mapping[str, NDArray[Any]]) -> NDArray[Any]:
        """Compare the two referenced column arrays element-wise."""
        left = self._resolve(columns, self.left)
        right = self._resolve(columns, self.right)
        if self.op == "=":
            return left == right
        if self.op == "!=":
            return left != right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        return left >= right

    def itercolumns(self) -> Iterator[ColumnRef]:
        """Yield the left then the right column reference."""
        yield self.left
        yield self.right

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        """Column-to-column comparisons have no per-column box form."""
        raise ValueError(
            f"column comparison {self} cannot be normalised to a box condition"
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialise as ``{"op": "colcmp", "cmp": ..., "left": ..., "right": ...}``."""
        return {
            "op": "colcmp",
            "cmp": self.op,
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
        }

    def negated(self) -> AbstractPredicate:
        """Negate by flipping the comparison operator."""
        return ColumnComparison(self.left, _NEGATED_OPS[self.op], self.right)

    def canonical(self) -> AbstractPredicate:
        """Order the operands so mirrored comparisons compare equal."""
        if self.right < self.left:
            return ColumnComparison(self.right, _MIRRORED_OPS[self.op], self.left)
        return self

    def __repr__(self) -> str:
        """Render as ``left <op> right`` with qualified names."""
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(CompoundPredicate):
    """Conjunction of child predicates."""

    children: tuple[AbstractPredicate, ...]

    def __init__(self, children: Iterable[AbstractPredicate]) -> None:
        """Freeze the child iterable into a tuple."""
        object.__setattr__(self, "children", tuple(children))

    def evaluate(self, columns: Mapping[str, NDArray[Any]]) -> NDArray[Any]:
        """AND the child masks (the empty conjunction is all-true)."""
        if not self.children:
            return TruePredicate().evaluate(columns)
        mask = self.children[0].evaluate(columns)
        for child in self.children[1:]:
            mask = mask & child.evaluate(columns)
        return mask

    def itercolumns(self) -> Iterator[ColumnRef]:
        """Yield every child's column references in order."""
        for child in self.children:
            yield from child.itercolumns()

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        """Intersect the children's boxes."""
        box = BoxCondition({})
        for child in self.children:
            box = box.intersect(child.to_box(discrete_columns))
        return box

    def to_dict(self) -> dict[str, Any]:
        """Serialise as ``{"op": "and", "children": [...]}``."""
        return {"op": "and", "children": [child.to_dict() for child in self.children]}

    def negated(self) -> AbstractPredicate:
        """De Morgan: negate into a disjunction of negated children."""
        return Or([child.negated() for child in self.children])

    def to_nnf(self) -> AbstractPredicate:
        """Rewrite every child into NNF."""
        return And([child.to_nnf() for child in self.children])

    def canonical(self) -> AbstractPredicate:
        """Flatten, simplify and sort the conjunction."""
        flat: list[AbstractPredicate] = []
        for child in self.children:
            child = child.canonical()
            if isinstance(child, And):
                flat.extend(child.children)
            elif isinstance(child, TruePredicate):
                continue
            elif isinstance(child, Or) and not child.children:
                return Or(())
            else:
                flat.append(child)
        unique = _sorted_unique(flat)
        if not unique:
            return TruePredicate()
        if len(unique) == 1:
            return unique[0]
        return And(unique)

    def __repr__(self) -> str:
        """Render as a parenthesised AND chain."""
        return "(" + " AND ".join(repr(child) for child in self.children) + ")"


@dataclass(frozen=True)
class Or(CompoundPredicate):
    """Disjunction of child predicates.

    Only single-column disjunctions (which normalise to an interval-set on
    that column) can be converted to a box condition.  The empty disjunction
    ``Or(())`` is the canonical *false* predicate.
    """

    children: tuple[AbstractPredicate, ...]

    def __init__(self, children: Iterable[AbstractPredicate]) -> None:
        """Freeze the child iterable into a tuple."""
        object.__setattr__(self, "children", tuple(children))

    def evaluate(self, columns: Mapping[str, NDArray[Any]]) -> NDArray[Any]:
        """OR the child masks (the empty disjunction is all-false)."""
        if not self.children:
            length = len(next(iter(columns.values()))) if columns else 0
            return np.zeros(length, dtype=bool)
        mask = self.children[0].evaluate(columns)
        for child in self.children[1:]:
            mask = mask | child.evaluate(columns)
        return mask

    def itercolumns(self) -> Iterator[ColumnRef]:
        """Yield every child's column references in order."""
        for child in self.children:
            yield from child.itercolumns()

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        """Union the children's single-column boxes.

        The empty disjunction lowers to the unsatisfiable box (``BoxCondition
        ({})`` would be the match-all box, silently flipping the semantics
        for every box-routed consumer), and unsatisfiable disjuncts
        contribute nothing.
        """
        if not self.children:
            return BoxCondition.never()
        referenced = self.columns()
        if len(referenced) > 1:
            raise ValueError(
                "disjunctions across multiple columns cannot be normalised to a box"
            )
        column = next(iter(referenced)) if referenced else None
        if column is None:
            # Column-free children have constant verdicts (TruePredicate,
            # nested empty disjunctions): the disjunction holds iff any child
            # normalises to a satisfiable box.
            if any(not child.to_box(discrete_columns).is_empty for child in self.children):
                return BoxCondition({})
            return BoxCondition.never()
        combined = IntervalSet.empty()
        for child in self.children:
            child_box = child.to_box(discrete_columns)
            if child_box.is_empty:
                # An unsatisfiable disjunct (e.g. a nested empty disjunction)
                # contributes nothing; asking it for the column's condition
                # would return the unconstrained interval set and silently
                # flip the disjunction to match-all.
                continue
            combined = combined.union(child_box.condition_for(column))
        return BoxCondition({column: combined})

    def to_dict(self) -> dict[str, Any]:
        """Serialise as ``{"op": "or", "children": [...]}``."""
        return {"op": "or", "children": [child.to_dict() for child in self.children]}

    def negated(self) -> AbstractPredicate:
        """De Morgan: negate into a conjunction of negated children."""
        if not self.children:
            return TruePredicate()
        return And([child.negated() for child in self.children])

    def to_nnf(self) -> AbstractPredicate:
        """Rewrite every child into NNF."""
        return Or([child.to_nnf() for child in self.children])

    def canonical(self) -> AbstractPredicate:
        """Flatten, simplify and sort the disjunction."""
        flat: list[AbstractPredicate] = []
        for child in self.children:
            child = child.canonical()
            if isinstance(child, Or):
                flat.extend(child.children)
            elif isinstance(child, TruePredicate):
                return TruePredicate()
            else:
                flat.append(child)
        unique = _sorted_unique(flat)
        if not unique:
            return Or(())
        if len(unique) == 1:
            return unique[0]
        return Or(unique)

    def __repr__(self) -> str:
        """Render as a parenthesised OR chain."""
        return "(" + " OR ".join(repr(child) for child in self.children) + ")"


@dataclass(frozen=True)
class Not(CompoundPredicate):
    """Negation of a child predicate."""

    child: AbstractPredicate

    def evaluate(self, columns: Mapping[str, NDArray[Any]]) -> NDArray[Any]:
        """Invert the child's mask."""
        return ~self.child.evaluate(columns)

    def itercolumns(self) -> Iterator[ColumnRef]:
        """Yield the child's column references."""
        return self.child.itercolumns()

    def to_box(self, discrete_columns: Mapping[str, bool] | None = None) -> "BoxCondition":
        """Complement the single-column child box."""
        referenced = self.child.columns()
        if len(referenced) != 1:
            raise ValueError("only single-column negations can be normalised to a box")
        column = next(iter(referenced))
        child_box = self.child.to_box(discrete_columns)
        if not child_box.satisfiable:
            # NOT of a flag-unsatisfiable child (e.g. AND with an empty
            # disjunction) holds everywhere; the child's per-column intervals
            # are irrelevant and complementing them would be unsound.
            return BoxCondition({})
        return BoxCondition({column: child_box.condition_for(column).complement()})

    def to_dict(self) -> dict[str, Any]:
        """Serialise as ``{"op": "not", "child": ...}``."""
        return {"op": "not", "child": self.child.to_dict()}

    def negated(self) -> AbstractPredicate:
        """Double negation: return the child in NNF."""
        return self.child.to_nnf()

    def to_nnf(self) -> AbstractPredicate:
        """Push the negation into the child."""
        return self.child.negated()

    def canonical(self) -> AbstractPredicate:
        """Canonicalise the child and collapse double negations."""
        child = self.child.canonical()
        if isinstance(child, Not):
            return child.child
        return Not(child)

    def __repr__(self) -> str:
        """Render as ``NOT (child)``."""
        return f"NOT ({self.child!r})"


def _sorted_unique(children: list[AbstractPredicate]) -> list[AbstractPredicate]:
    """Sort canonical children by key and drop duplicates (order-stable)."""
    keyed = sorted(
        (json.dumps(child.to_dict(), sort_keys=True), child) for child in children
    )
    unique: list[AbstractPredicate] = []
    seen: set[str] = set()
    for key, child in keyed:
        if key not in seen:
            seen.add(key)
            unique.append(child)
    return unique


_MAX_CNF_CLAUSES = 4096


def _cnf_clauses(
    predicate: AbstractPredicate,
) -> list[list[AbstractPredicate]] | None:
    """Clause lists of an NNF predicate, or ``None`` for constant falsity.

    A clause is a list of literals joined by OR; the clause lists are joined
    by AND.  ``[]`` (no clauses) encodes TRUE; ``None`` encodes FALSE (an
    unsatisfiable empty clause absorbed the conjunction).
    """
    if isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, (BasePredicate, BinaryPredicate, Not)):
        return [[predicate]]
    if isinstance(predicate, And):
        clauses: list[list[AbstractPredicate]] = []
        for child in predicate.children:
            child_clauses = _cnf_clauses(child)
            if child_clauses is None:
                return None
            clauses.extend(child_clauses)
        return clauses
    if isinstance(predicate, Or):
        alternatives = []
        for child in predicate.children:
            child_clauses = _cnf_clauses(child)
            if child_clauses is None:
                continue  # a false disjunct contributes nothing
            if not child_clauses:
                return []  # a true disjunct makes the whole clause true
            alternatives.append(child_clauses)
        if not alternatives:
            return None  # empty (or all-false) disjunction: FALSE
        total = 1
        for child_clauses in alternatives:
            total *= len(child_clauses)
            if total > _MAX_CNF_CLAUSES:
                raise ValueError(
                    f"CNF expansion of {predicate} exceeds {_MAX_CNF_CLAUSES} clauses"
                )
        distributed: list[list[AbstractPredicate]] = []
        for combo in itertools.product(*alternatives):
            merged: list[AbstractPredicate] = []
            for clause in combo:
                merged.extend(clause)
            distributed.append(merged)
        return distributed
    raise ValueError(f"cannot convert {type(predicate).__name__} to CNF")


def split_conjuncts(predicate: AbstractPredicate) -> tuple[AbstractPredicate, ...]:
    """Flatten nested conjunctions into a tuple of top-level conjuncts.

    ``TruePredicate`` conjuncts are dropped; any non-And predicate is its own
    single conjunct.  Together with :meth:`AbstractPredicate.is_join` this is
    how a parsed WHERE clause is partitioned into join edges and per-table
    filters.
    """
    if isinstance(predicate, TruePredicate):
        return ()
    if isinstance(predicate, And):
        parts: list[AbstractPredicate] = []
        for child in predicate.children:
            parts.extend(split_conjuncts(child))
        return tuple(parts)
    return (predicate,)


# ---------------------------------------------------------------------------
# Conjunctive box conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnCondition:
    """A single column restricted to an interval set (used for reporting)."""

    column: str
    intervals: IntervalSet


class BoxCondition:
    """A conjunctive condition: each constrained column limited to an interval set.

    Columns not present are unconstrained.  This is the canonical constraint
    form consumed by the LP formulator: every workload predicate, and every
    predicate borrowed across a key/foreign-key join, ends up as one of these.

    ``satisfiable=False`` marks the *falsum* box (no tuple can ever match) —
    needed because a column-free contradiction such as the empty disjunction
    has no per-column interval set to carry its emptiness.
    """

    __slots__ = ("conditions", "satisfiable")

    def __init__(self, conditions: Mapping[str, IntervalSet], satisfiable: bool = True) -> None:
        """Store the constrained columns, dropping unconstrained entries."""
        cleaned = {
            column: interval_set
            for column, interval_set in conditions.items()
            if not interval_set.is_everything
        }
        self.conditions: dict[str, IntervalSet] = dict(sorted(cleaned.items()))
        self.satisfiable: bool = bool(satisfiable)

    @classmethod
    def never(cls) -> "BoxCondition":
        """The unsatisfiable box: matches no tuple on any relation."""
        return cls({}, satisfiable=False)

    # -- basic accessors -------------------------------------------------

    @property
    def is_unconstrained(self) -> bool:
        """Whether the box matches every tuple."""
        return self.satisfiable and not self.conditions

    @property
    def is_empty(self) -> bool:
        """Whether no tuple can satisfy the box."""
        return not self.satisfiable or any(
            interval_set.is_empty for interval_set in self.conditions.values()
        )

    def columns(self) -> set[str]:
        """The constrained column names."""
        return set(self.conditions)

    def condition_for(self, column: str) -> IntervalSet:
        """The interval set of one column (everything when unconstrained)."""
        return self.conditions.get(column, IntervalSet.everything())

    # -- algebra ---------------------------------------------------------

    def intersect(self, other: "BoxCondition") -> "BoxCondition":
        """Column-wise intersection of two boxes."""
        conditions: dict[str, IntervalSet] = dict(self.conditions)
        for column, interval_set in other.conditions.items():
            if column in conditions:
                conditions[column] = conditions[column].intersect(interval_set)
            else:
                conditions[column] = interval_set
        return BoxCondition(conditions, satisfiable=self.satisfiable and other.satisfiable)

    def with_condition(self, column: str, intervals: IntervalSet) -> "BoxCondition":
        """A copy with ``column`` further restricted to ``intervals``."""
        conditions = dict(self.conditions)
        conditions[column] = self.condition_for(column).intersect(intervals)
        return BoxCondition(conditions, satisfiable=self.satisfiable)

    # -- evaluation ------------------------------------------------------

    def evaluate(self, columns: Mapping[str, NDArray[Any]]) -> NDArray[Any]:
        """Vectorised membership test over column arrays."""
        length = len(next(iter(columns.values()))) if columns else 0
        if not self.satisfiable:
            return np.zeros(length, dtype=bool)
        mask = np.ones(length, dtype=bool)
        for column, interval_set in self.conditions.items():
            mask &= interval_set.membership_mask(np.asarray(columns[column]))
        return mask

    def contains_point(self, point: Mapping[str, float]) -> bool:
        """Whether a single point satisfies every column condition."""
        if not self.satisfiable:
            return False
        for column, interval_set in self.conditions.items():
            if column not in point:
                return False
            if not interval_set.contains(point[column]):
                return False
        return True

    # -- serialisation / dunder -----------------------------------------

    def to_predicate(self) -> AbstractPredicate:
        """Convert back to a predicate AST (for execution / verification)."""
        if not self.satisfiable:
            return Or(())
        children: list[AbstractPredicate] = []
        for column, interval_set in self.conditions.items():
            column_children: list[AbstractPredicate] = []
            for interval in interval_set:
                parts: list[AbstractPredicate] = []
                if not math.isinf(interval.low):
                    parts.append(Comparison(column, ">=", interval.low))
                if not math.isinf(interval.high):
                    parts.append(Comparison(column, "<", interval.high))
                if not parts:
                    parts.append(TruePredicate())
                column_children.append(And(parts) if len(parts) > 1 else parts[0])
            if len(column_children) == 1:
                children.append(column_children[0])
            else:
                children.append(Or(column_children))
        if not children:
            return TruePredicate()
        if len(children) == 1:
            return children[0]
        return And(children)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a column -> interval-list mapping."""
        payload: dict[str, Any] = {
            column: interval_set.to_dict()
            for column, interval_set in self.conditions.items()
        }
        if not self.satisfiable:
            payload["__unsatisfiable__"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BoxCondition":
        """Reconstruct a box from :meth:`to_dict` output."""
        return cls(
            {
                column: IntervalSet.from_dict(item)
                for column, item in payload.items()
                if column != "__unsatisfiable__"
            },
            satisfiable=not payload.get("__unsatisfiable__", False),
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality on satisfiability and per-column conditions."""
        if not isinstance(other, BoxCondition):
            return NotImplemented
        return self.satisfiable == other.satisfiable and self.conditions == other.conditions

    def __hash__(self) -> int:
        """Hash consistent with :meth:`__eq__`."""
        return hash((self.satisfiable, tuple(self.conditions.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Render the constrained columns (or TRUE/FALSE)."""
        if not self.satisfiable:
            return "BoxCondition(FALSE)"
        if self.is_unconstrained:
            return "BoxCondition(TRUE)"
        parts = [f"{column} ∈ {interval_set!r}" for column, interval_set in self.conditions.items()]
        return "BoxCondition(" + " ∧ ".join(parts) + ")"


# ---------------------------------------------------------------------------
# Box-conversion exactness
# ---------------------------------------------------------------------------


def box_semantics_exact(
    predicate: AbstractPredicate, discrete_columns: Mapping[str, bool]
) -> bool:
    """Whether ``predicate.to_box(discrete_columns)`` is *exactly* equivalent.

    ``discrete_columns`` maps every known column of the relation to whether
    its internal domain is discrete (integral); a column absent from the
    mapping is unknown and makes the predicate inexact, so that unknown
    columns surface as errors on every execution route instead of being
    silently counted against a summary default value.

    Exactness composes: intersections/unions/complements of exact per-column
    interval sets stay exact, so only the leaves matter.  A comparison on a
    discrete column is exact only for integral constants (``qty = 2.5``
    matches nothing, but its box ``[2.5, 3.5)`` matches 3); on a continuous
    column only ``<`` and ``>=`` avoid the epsilon approximation.  Column
    comparisons (join predicates) have no box form at all.
    """
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, Comparison):
        if predicate.column not in discrete_columns:
            return False
        if predicate.op in ("<", ">="):
            return True
        # =, !=, <= and > round the bound to the next representable point.
        return (
            discrete_columns[predicate.column]
            and float(predicate.value).is_integer()
        )
    if isinstance(predicate, InList):
        return (
            predicate.column in discrete_columns
            and discrete_columns[predicate.column]
            and all(float(value).is_integer() for value in predicate.values)
        )
    if isinstance(predicate, And):
        return all(box_semantics_exact(child, discrete_columns) for child in predicate.children)
    if isinstance(predicate, Or):
        # The empty disjunction normalises to the unsatisfiable box, which is
        # exactly its all-false evaluation semantics.
        return all(box_semantics_exact(child, discrete_columns) for child in predicate.children)
    if isinstance(predicate, Not):
        return box_semantics_exact(predicate.child, discrete_columns)
    return False


# ---------------------------------------------------------------------------
# Deserialisation
# ---------------------------------------------------------------------------


def predicate_from_dict(payload: Mapping[str, Any]) -> AbstractPredicate:
    """Inverse of :meth:`AbstractPredicate.to_dict` for every AST node type."""
    op = payload["op"]
    if op == "true":
        return TruePredicate()
    if op == "in":
        return InList(payload["column"], tuple(float(v) for v in payload["values"]))
    if op == "and":
        return And([predicate_from_dict(child) for child in payload["children"]])
    if op == "or":
        return Or([predicate_from_dict(child) for child in payload["children"]])
    if op == "not":
        return Not(predicate_from_dict(payload["child"]))
    if op == "colcmp":
        return ColumnComparison(
            ColumnRef.from_dict(payload["left"]),
            payload["cmp"],
            ColumnRef.from_dict(payload["right"]),
        )
    if op in _COMPARISON_OPS:
        return Comparison(payload["column"], op, float(payload["value"]))
    raise ValueError(f"unknown predicate op {op!r}")
