"""Query model: SPJ queries over a schema.

HYDRA's workloads are select-project-join (SPJ) queries whose joins follow
key/foreign-key edges (the canonical TPC-DS style queries shown in the demo's
client interface).  A :class:`Query` captures exactly that structure:
the referenced tables, the equi-join conditions, one conjunctive filter
predicate per table, and the projection list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..catalog.schema import Schema
from .predicates import (
    ColumnComparison,
    ColumnRef,
    Or,
    Predicate,
    TruePredicate,
    predicate_from_dict,
)

__all__ = [
    "JoinCondition",
    "DisjunctiveJoinCondition",
    "join_condition_from_dict",
    "Query",
]


@dataclass(frozen=True)
class JoinCondition:
    """An equi-join ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def involves(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)

    def other_side(self, table: str) -> tuple[str, str]:
        """The (table, column) on the opposite side of ``table``."""
        if table == self.left_table:
            return self.right_table, self.right_column
        if table == self.right_table:
            return self.left_table, self.left_column
        raise ValueError(f"join {self!r} does not involve table {table!r}")

    def side_column(self, table: str) -> str:
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise ValueError(f"join {self!r} does not involve table {table!r}")

    def to_dict(self) -> dict[str, str]:
        return {
            "left_table": self.left_table,
            "left_column": self.left_column,
            "right_table": self.right_table,
            "right_column": self.right_column,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, str]) -> "JoinCondition":
        return cls(
            left_table=payload["left_table"],
            left_column=payload["left_column"],
            right_table=payload["right_table"],
            right_column=payload["right_column"],
        )

    def as_predicate(self) -> ColumnComparison:
        """The join condition as a qualified column-comparison predicate."""
        return ColumnComparison(
            ColumnRef(self.left_table, self.left_column),
            "=",
            ColumnRef(self.right_table, self.right_column),
        )

    def __repr__(self) -> str:
        return (
            f"{self.left_table}.{self.left_column} = "
            f"{self.right_table}.{self.right_column}"
        )


@dataclass(frozen=True)
class DisjunctiveJoinCondition:
    """A disjunction of equi-joins between the same pair of tables.

    The SQL shape ``(R.a = S.x OR R.b = S.y)``: every alternative must relate
    the same two tables, so the disjunction still contributes a single edge
    to the join graph.  A row pair matches when *any* alternative holds.
    """

    alternatives: tuple[JoinCondition, ...]

    def __init__(
        self, alternatives: "list[JoinCondition] | tuple[JoinCondition, ...]"
    ) -> None:
        alternatives = tuple(alternatives)
        if len(alternatives) < 2:
            raise ValueError("a disjunctive join needs at least two alternatives")
        pairs = {
            frozenset((alt.left_table, alt.right_table)) for alt in alternatives
        }
        if len(pairs) != 1:
            raise ValueError(
                "all alternatives of a disjunctive join must relate the same table pair"
            )
        object.__setattr__(self, "alternatives", alternatives)

    @property
    def left_table(self) -> str:
        """The left table (of the first alternative — all agree by table pair)."""
        return self.alternatives[0].left_table

    @property
    def right_table(self) -> str:
        """The right table (of the first alternative)."""
        return self.alternatives[0].right_table

    def involves(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)

    def other_table(self, table: str) -> str:
        """The table on the opposite side of ``table``."""
        if table == self.left_table:
            return self.right_table
        if table == self.right_table:
            return self.left_table
        raise ValueError(f"join {self!r} does not involve table {table!r}")

    def as_predicate(self) -> Predicate:
        """The disjunction as an ``Or`` of column-comparison predicates."""
        return Or([alt.as_predicate() for alt in self.alternatives])

    def to_dict(self) -> dict[str, Any]:
        return {"alternatives": [alt.to_dict() for alt in self.alternatives]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DisjunctiveJoinCondition":
        return cls([JoinCondition.from_dict(item) for item in payload["alternatives"]])

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(alt) for alt in self.alternatives) + ")"


def join_condition_from_dict(
    payload: Mapping[str, Any],
) -> "JoinCondition | DisjunctiveJoinCondition":
    """Deserialise either join-condition shape from its ``to_dict`` payload."""
    if "alternatives" in payload:
        return DisjunctiveJoinCondition.from_dict(payload)
    return JoinCondition.from_dict(payload)


@dataclass
class Query:
    """A select-project-join query over a schema."""

    name: str
    tables: list[str]
    joins: "list[JoinCondition | DisjunctiveJoinCondition]" = field(default_factory=list)
    filters: dict[str, Predicate] = field(default_factory=dict)
    projection: list[str] = field(default_factory=lambda: ["*"])
    sql: str = ""

    def filter_for(self, table: str) -> Predicate:
        """The (possibly trivial) filter predicate applied to ``table``."""
        return self.filters.get(table, TruePredicate())

    def has_filter(self, table: str) -> bool:
        predicate = self.filters.get(table)
        return predicate is not None and not isinstance(predicate, TruePredicate)

    def joins_for(self, table: str) -> "list[JoinCondition | DisjunctiveJoinCondition]":
        return [join for join in self.joins if join.involves(table)]

    def validate(self, schema: Schema) -> None:
        """Check that every table, join column and filter column exists."""
        for table_name in self.tables:
            schema.table(table_name)
        for join in self.joins:
            conjuncts = (
                join.alternatives
                if isinstance(join, DisjunctiveJoinCondition)
                else (join,)
            )
            for alt in conjuncts:
                schema.table(alt.left_table).column(alt.left_column)
                schema.table(alt.right_table).column(alt.right_column)
            if join.left_table not in self.tables or join.right_table not in self.tables:
                raise ValueError(f"join {join!r} references a table not in FROM")
        for table_name, predicate in self.filters.items():
            table = schema.table(table_name)
            for column in predicate.columns():
                table.column(column)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "tables": list(self.tables),
            "joins": [join.to_dict() for join in self.joins],
            "filters": {
                table: predicate.to_dict() for table, predicate in self.filters.items()
            },
            "projection": list(self.projection),
            "sql": self.sql,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Query":
        return cls(
            name=payload["name"],
            tables=list(payload["tables"]),
            joins=[join_condition_from_dict(item) for item in payload.get("joins", [])],
            filters={
                table: predicate_from_dict(item)
                for table, item in payload.get("filters", {}).items()
            },
            projection=list(payload.get("projection", ["*"])),
            sql=payload.get("sql", ""),
        )

    def __repr__(self) -> str:
        return f"Query({self.name!r}, tables={self.tables})"
