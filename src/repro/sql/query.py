"""Query model: SPJ queries over a schema.

HYDRA's workloads are select-project-join (SPJ) queries whose joins follow
key/foreign-key edges (the canonical TPC-DS style queries shown in the demo's
client interface).  A :class:`Query` captures exactly that structure:
the referenced tables, the equi-join conditions, one conjunctive filter
predicate per table, and the projection list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..catalog.schema import Schema
from .expressions import Predicate, TruePredicate, predicate_from_dict

__all__ = ["JoinCondition", "Query"]


@dataclass(frozen=True)
class JoinCondition:
    """An equi-join ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def involves(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)

    def other_side(self, table: str) -> tuple[str, str]:
        """The (table, column) on the opposite side of ``table``."""
        if table == self.left_table:
            return self.right_table, self.right_column
        if table == self.right_table:
            return self.left_table, self.left_column
        raise ValueError(f"join {self!r} does not involve table {table!r}")

    def side_column(self, table: str) -> str:
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise ValueError(f"join {self!r} does not involve table {table!r}")

    def to_dict(self) -> dict[str, str]:
        return {
            "left_table": self.left_table,
            "left_column": self.left_column,
            "right_table": self.right_table,
            "right_column": self.right_column,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, str]) -> "JoinCondition":
        return cls(
            left_table=payload["left_table"],
            left_column=payload["left_column"],
            right_table=payload["right_table"],
            right_column=payload["right_column"],
        )

    def __repr__(self) -> str:
        return (
            f"{self.left_table}.{self.left_column} = "
            f"{self.right_table}.{self.right_column}"
        )


@dataclass
class Query:
    """A select-project-join query over a schema."""

    name: str
    tables: list[str]
    joins: list[JoinCondition] = field(default_factory=list)
    filters: dict[str, Predicate] = field(default_factory=dict)
    projection: list[str] = field(default_factory=lambda: ["*"])
    sql: str = ""

    def filter_for(self, table: str) -> Predicate:
        """The (possibly trivial) filter predicate applied to ``table``."""
        return self.filters.get(table, TruePredicate())

    def has_filter(self, table: str) -> bool:
        predicate = self.filters.get(table)
        return predicate is not None and not isinstance(predicate, TruePredicate)

    def joins_for(self, table: str) -> list[JoinCondition]:
        return [join for join in self.joins if join.involves(table)]

    def validate(self, schema: Schema) -> None:
        """Check that every table, join column and filter column exists."""
        for table_name in self.tables:
            schema.table(table_name)
        for join in self.joins:
            schema.table(join.left_table).column(join.left_column)
            schema.table(join.right_table).column(join.right_column)
            if join.left_table not in self.tables or join.right_table not in self.tables:
                raise ValueError(f"join {join!r} references a table not in FROM")
        for table_name, predicate in self.filters.items():
            table = schema.table(table_name)
            for column in predicate.columns():
                table.column(column)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "tables": list(self.tables),
            "joins": [join.to_dict() for join in self.joins],
            "filters": {
                table: predicate.to_dict() for table, predicate in self.filters.items()
            },
            "projection": list(self.projection),
            "sql": self.sql,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Query":
        return cls(
            name=payload["name"],
            tables=list(payload["tables"]),
            joins=[JoinCondition.from_dict(item) for item in payload.get("joins", [])],
            filters={
                table: predicate_from_dict(item)
                for table, item in payload.get("filters", {}).items()
            },
            projection=list(payload.get("projection", ["*"])),
            sql=payload.get("sql", ""),
        )

    def __repr__(self) -> str:
        return f"Query({self.name!r}, tables={self.tables})"
