"""Execution engine: vectorised SPJ operators, datagen scan and rate control."""

from .datagen import DataGenRelation, GenerationStats, ParallelDataGenRelation, RowSource
from .engine import ExecutionEngine, ExecutionResult, ExecutorError
from .rate import RateLimiter, VirtualClock

__all__ = [
    "DataGenRelation",
    "ExecutionEngine",
    "ExecutionResult",
    "ExecutorError",
    "GenerationStats",
    "ParallelDataGenRelation",
    "RateLimiter",
    "RowSource",
    "VirtualClock",
]
