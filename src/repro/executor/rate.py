"""Velocity regulation for dynamic data generation.

One of the Big Data facets HYDRA targets is *velocity*: because regenerated
tuples are produced in memory rather than read from disk, the rate at which a
dataless relation streams rows can be regulated precisely (the demo exposes
this as a rows-per-second slider).  The :class:`RateLimiter` implements a
token-bucket style pacing over an injectable clock so that the behaviour can
be benchmarked deterministically with a :class:`VirtualClock` and used in real
time with the wall clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["VirtualClock", "RateLimiter"]


class VirtualClock:
    """A manually-advanced clock: ``sleep`` advances time instead of blocking.

    Benchmarks and tests use it so that velocity-regulation behaviour (how
    long a stream of N rows takes at R rows/second) can be verified exactly
    without real waiting.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep for a negative duration")
        self._now += seconds

    def advance(self, seconds: float) -> None:
        self.sleep(seconds)


@dataclass
class RateLimiter:
    """Regulates row production to at most ``rows_per_second``.

    ``rows_per_second=None`` (or ``<= 0``) disables throttling entirely, which
    is the "as fast as possible" position of the demo's velocity slider.

    A limiter is *not* process-safe and must never be shared with (or shipped
    to) regeneration worker processes: under sharded parallel generation
    (``workers > 1``) the consuming process throttles the **merged** block
    stream, so one limiter observes one totally-ordered stream exactly as in
    the serial case.  Shared mode (``Hydra.regenerate(shared_rate_limiter=
    True)``) paces the union of all relations' merged streams against a
    single budget; per-relation :meth:`clone` mode paces each relation's
    merged stream independently — in both modes the budget is rows *delivered
    to the consumer* per second, regardless of how many workers produced
    them (workers may run ahead by the bounded queue capacity).
    """

    rows_per_second: float | None = None
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep
    _start: float | None = field(default=None, init=False, repr=False)
    _produced: int = field(default=0, init=False, repr=False)

    @classmethod
    def unlimited(cls) -> "RateLimiter":
        return cls(rows_per_second=None)

    @classmethod
    def with_virtual_clock(
        cls, rows_per_second: float | None, clock: VirtualClock | None = None
    ) -> tuple["RateLimiter", VirtualClock]:
        virtual = clock or VirtualClock()
        limiter = cls(rows_per_second=rows_per_second, clock=virtual.now, sleep=virtual.sleep)
        return limiter, virtual

    @property
    def is_limited(self) -> bool:
        return self.rows_per_second is not None and self.rows_per_second > 0

    @property
    def rows_produced(self) -> int:
        return self._produced

    def reset(self) -> None:
        self._start = None
        self._produced = 0

    def clone(self) -> "RateLimiter":
        """A fresh limiter with the same configuration but zeroed pacing state.

        Streams that should be paced independently (one relation each) must
        not share a limiter instance: ``_start``/``_produced`` are cumulative,
        so a shared instance would pace stream B as if stream A's rows counted
        against its budget.  With ``workers > 1`` each clone still paces its
        relation's single merged stream (cloning happens per relation, never
        per worker), so the per-relation budget semantics are identical to
        serial generation.
        """
        return RateLimiter(
            rows_per_second=self.rows_per_second, clock=self.clock, sleep=self.sleep
        )

    def throttle(self, rows: int) -> float:
        """Account for ``rows`` produced rows, sleeping if ahead of schedule.

        Returns the number of seconds slept (0.0 when unthrottled).
        """
        if rows < 0:
            raise ValueError("rows must be non-negative")
        if self._start is None:
            self._start = self.clock()
        self._produced += rows
        if not self.is_limited:
            return 0.0
        target_elapsed = self._produced / float(self.rows_per_second)
        actual_elapsed = self.clock() - self._start
        delay = target_elapsed - actual_elapsed
        if delay > 0:
            self.sleep(delay)
            return delay
        return 0.0

    def observed_rate(self) -> float:
        """Rows per second achieved so far.

        ``0.0`` before the first :meth:`throttle` call (nothing has been
        observed yet); ``inf`` if no time has elapsed since it — regardless
        of how many rows were produced in that instant; otherwise
        ``rows_produced / elapsed_seconds``.
        """
        if self._start is None:
            return 0.0
        elapsed = self.clock() - self._start
        if elapsed <= 0:
            return float("inf")
        return self._produced / elapsed
