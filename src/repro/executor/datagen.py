"""The ``datagen`` dynamic-regeneration scan.

The paper adds a ``datagen`` property to PostgreSQL relations: when enabled,
the traditional scan operator is replaced by an operator that produces the
relation's tuples on the fly from the HYDRA summary instead of reading them
from disk.  :class:`DataGenRelation` is the equivalent here — a relation
provider that wraps any *row source* (in practice a
:class:`~repro.core.tuplegen.TupleGenerator`), streams its rows in batches
through an optional :class:`~repro.executor.rate.RateLimiter`, and can also
materialise the relation on request (the per-relation choice offered by the
demo's vendor interface).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol, Sequence, TYPE_CHECKING, runtime_checkable

import numpy as np
from numpy.typing import NDArray

from ..sql.predicates import BoxCondition, columns_with_dependencies
from ..storage.table import TableData
from .rate import RateLimiter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog.schema import Table
    from ..core.tuplegen import TupleGenerator
    from ..sql.predicates import Predicate

__all__ = ["RowSource", "DataGenRelation", "ParallelDataGenRelation", "GenerationStats"]


@runtime_checkable
class RowSource(Protocol):
    """The minimal interface a dataless row source must provide."""

    @property
    def row_count(self) -> int:  # pragma: no cover - protocol signature
        ...

    @property
    def column_names(self) -> list[str]:  # pragma: no cover - protocol signature
        ...

    def row(self, index: int) -> tuple:  # pragma: no cover - protocol signature
        ...

    def generate_block(
        self, start: int, count: int, columns: Sequence[str] | None = None
    ) -> dict[str, NDArray[Any]]:  # pragma: no cover - protocol signature
        ...


@dataclass
class GenerationStats:
    """Bookkeeping for one regeneration run (exposed by the demo's UI)."""

    rows_generated: int = 0
    batches: int = 0
    seconds_throttled: float = 0.0


@dataclass
class DataGenRelation:
    """Relation provider that regenerates tuples on demand from a summary."""

    source: RowSource
    rate_limiter: RateLimiter = field(default_factory=RateLimiter.unlimited)
    batch_size: int = 8192
    stats: GenerationStats = field(default_factory=GenerationStats)

    # -- provider protocol -------------------------------------------------

    @property
    def row_count(self) -> int:
        return self.source.row_count

    @property
    def column_names(self) -> list[str]:
        return self.source.column_names

    def row(self, index: int) -> tuple:
        return self.source.row(index)

    # -- bulk interface used by the execution engine -----------------------

    def fetch_columns(
        self, columns: Sequence[str], batch_size: int | None = None
    ) -> dict[str, NDArray[Any]]:
        """Generate the requested columns for the whole relation.

        Generation happens in batches so that the rate limiter can pace the
        stream; the concatenated arrays are returned to the engine.
        """
        effective_batch = batch_size or self.batch_size
        pieces: dict[str, list[NDArray[Any]]] = {name: [] for name in columns}
        for start, count, block in self.iter_blocks(effective_batch, columns):
            del start, count
            for name in columns:
                pieces[name].append(block[name])
        # A zero-row relation yields no blocks; ask the source for an empty
        # block so each column keeps its schema dtype instead of collapsing
        # to float64 (which would poison join/key dtypes downstream).
        empty: dict[str, NDArray[Any]] | None = None
        result: dict[str, NDArray[Any]] = {}
        for name, chunks in pieces.items():
            if chunks:
                result[name] = np.concatenate(chunks)
            else:
                if empty is None:
                    empty = self.source.generate_block(0, 0, list(columns))
                result[name] = np.asarray(empty[name])
        return result

    def iter_blocks(
        self, batch_size: int | None = None, columns: Sequence[str] | None = None
    ) -> Iterator[tuple[int, int, dict[str, NDArray[Any]]]]:
        """Yield ``(start, count, columns)`` blocks, honouring the rate limit."""
        effective_batch = batch_size or self.batch_size
        total = self.source.row_count
        requested = list(columns) if columns is not None else self.source.column_names
        start = 0
        while start < total:
            count = min(effective_batch, total - start)
            block = self.source.generate_block(start, count, requested)
            self.stats.rows_generated += count
            self.stats.batches += 1
            self.stats.seconds_throttled += self.rate_limiter.throttle(count)
            yield start, count, block
            start += count

    def iter_filtered_blocks(
        self,
        predicate: "Predicate | None" = None,
        box: "BoxCondition | None" = None,
        columns: Sequence[str] | None = None,
        batch_size: int | None = None,
        skip_box: "BoxCondition | None" = None,
    ) -> Iterator[tuple[int, int, int, dict[str, NDArray[Any]]]]:
        """Stream ``(start, generated, matched, block)`` with only matching rows.

        When the row source understands box conditions (a
        :class:`~repro.core.tuplegen.TupleGenerator`) and ``box`` is given,
        filtering is pushed all the way into tuple generation, which skips
        summary-row segments that cannot match.  Otherwise rows are generated
        batch-by-batch and masked with ``predicate`` (falling back to the box,
        converted to a predicate, when only a box is given).  Either way peak
        memory is bounded by the batch size plus the matching rows, and the
        rate limiter paces the *generated* tuples.

        ``skip_box`` (a semi-join pushdown, see
        :meth:`~repro.core.tuplegen.TupleGenerator.iter_filtered_blocks`) is
        honoured only on the summary-backed path, where segments it excludes
        can be replaced by an exact ``matched`` count without generation; the
        masking fallback ignores it, leaving the consumer to apply it.
        """
        effective_batch = batch_size or self.batch_size
        requested = list(columns) if columns is not None else self.source.column_names
        source_filtered = getattr(self.source, "iter_filtered_blocks", None)
        if box is not None and callable(source_filtered):
            for start, generated, matched, block in source_filtered(
                box, batch_size=effective_batch, columns=requested, skip_box=skip_box
            ):
                self.stats.rows_generated += generated
                if generated:
                    self.stats.batches += 1
                    self.stats.seconds_throttled += self.rate_limiter.throttle(generated)
                yield start, generated, matched, block
            return

        condition = predicate
        if condition is None and box is not None:
            condition = box.to_predicate()
        needed = requested
        if condition is not None:
            needed = columns_with_dependencies(requested, condition.columns())
        for start, count, block in self.iter_blocks(effective_batch, needed):
            if condition is None:
                yield start, count, count, {name: block[name] for name in requested}
                continue
            mask = condition.evaluate(block)
            matched = int(mask.sum())
            if matched == count:
                out = {name: block[name] for name in requested}
            else:
                out = {name: block[name][mask] for name in requested}
            yield start, count, matched, out

    def iter_rows(self, batch_size: int | None = None) -> Iterator[tuple]:
        """Stream decodable row tuples (used by examples and the CLI)."""
        names = self.source.column_names
        for start, count, block in self.iter_blocks(batch_size):
            for offset in range(count):
                yield tuple(block[name][offset] for name in names)
            del start

    # -- optional materialisation ------------------------------------------

    def materialize(self, table: "Table") -> TableData:
        """Materialise the full relation into a :class:`TableData`.

        ``table`` is the schema :class:`~repro.catalog.schema.Table` this
        relation instantiates.  This mirrors the demo's per-relation
        "materialise instead of dynamic generation" switch.
        """
        columns = self.fetch_columns(table.column_names)
        return TableData.from_columns(table, columns)


@dataclass
class ParallelDataGenRelation(DataGenRelation):
    """A ``datagen`` relation that regenerates tuples across worker processes.

    Wherever the serial relation would stream blocks from its
    :class:`~repro.core.tuplegen.TupleGenerator`, this subclass instead
    builds a :class:`~repro.parallel.sharding.ShardPlan` over the summary —
    balanced by the tuples each shard will actually generate under the
    pushed-down ``box``/``skip_box`` — and consumes the ordered merge of the
    per-shard worker streams (:func:`~repro.parallel.pool.iter_parallel_blocks`).
    A merged *filtered* stream is yield-for-yield bit-identical to the
    serial one; the unfiltered :meth:`iter_blocks` route delivers identical
    rows in identical order but with segment-anchored block boundaries
    (``stats.batches`` may exceed serial's ``ceil(total/batch)``).  Every
    consumer (engine streaming scans, streaming joins, materialisation)
    works unchanged; only tuple throughput differs.

    Each iteration builds a fresh plan and worker set, torn down when the
    stream ends — cheap under the preferred ``fork`` start method, but a
    per-scan interpreter startup cost under ``spawn``.  ``min_parallel_rows``
    keeps small relations on the serial in-process path.

    Stats and rate limiting happen here in the consuming process, on the
    merged stream: with the relation's own limiter the relation is paced as
    one stream regardless of ``workers``; with a shared limiter
    (``Hydra.regenerate(shared_rate_limiter=True)``) all relations draw from
    one global budget, again measured on merged output.  Workers never sleep
    — backpressure from the bounded queues is what holds them back, so up to
    ``workers × queue_blocks`` batches may be generated ahead of the paced
    stream.

    Falls back to the serial path when ``workers <= 1``, when the row source
    is not a summary-backed :class:`TupleGenerator`, or when the relation is
    smaller than ``min_parallel_rows``.  When only a ``predicate`` (no box)
    is given, the predicate *mask* is applied in the consuming process, but
    the underlying block generation still fans out through the parallel
    :meth:`iter_blocks` — so block starts are segment-anchored there too.
    """

    workers: int = 2
    queue_blocks: int = 8
    mp_context: str | None = None
    #: Relations smaller than this stay serial: worker startup would cost
    #: more than it parallelises.  0 keeps the pool always-on (deterministic
    #: engagement, the right default under ``fork``); raise it on platforms
    #: where only ``spawn`` is available.
    min_parallel_rows: int = 0

    def _parallel_source(self) -> "TupleGenerator | None":
        if self.workers <= 1:
            return None
        if self.source.row_count < self.min_parallel_rows:
            return None
        # Imported lazily: ``repro.core`` imports this module at package
        # init, so a module-level import back into core would be circular.
        from ..core.tuplegen import TupleGenerator

        source = self.source
        if isinstance(source, TupleGenerator):
            return source
        return None

    def _iter_merged(
        self,
        source: "TupleGenerator",
        box: "BoxCondition",
        requested: list[str],
        batch_size: int,
        skip_box: "BoxCondition | None" = None,
    ) -> Iterator[tuple[int, int, int, dict[str, NDArray[Any]]]]:
        """Shard, fan out, merge — accounting stats and pacing in-parent."""
        from ..parallel.pool import iter_parallel_blocks
        from ..parallel.sharding import ShardPlan

        plan = ShardPlan.build(
            source.summary,
            workers=self.workers,
            batch_size=batch_size,
            box=box,
            skip_box=skip_box,
            pk_column=source.table.primary_key,
            # A chunk must fit in its worker's bounded queue (plus the end
            # marker) for the round-robin drain to fully overlap the lanes.
            # Sized in rows, which equals blocks only while summary segments
            # are >= batch_size: many tiny segments emit one (small) block
            # each, degrading overlap — never correctness or the memory
            # bound, which the queue enforces regardless.
            target_chunk_rows=batch_size * max(1, self.queue_blocks // 2),
        )
        for start, generated, matched, block in iter_parallel_blocks(
            source.table,
            source.summary,
            plan,
            box,
            columns=requested,
            skip_box=skip_box,
            queue_blocks=self.queue_blocks,
            mp_context=self.mp_context,
        ):
            self.stats.rows_generated += generated
            if generated:
                self.stats.batches += 1
                self.stats.seconds_throttled += self.rate_limiter.throttle(generated)
            yield start, generated, matched, block

    def iter_blocks(
        self, batch_size: int | None = None, columns: Sequence[str] | None = None
    ) -> Iterator[tuple[int, int, dict[str, NDArray[Any]]]]:
        source = self._parallel_source()
        if source is None:
            yield from super().iter_blocks(batch_size, columns)
            return
        effective_batch = batch_size or self.batch_size
        requested = list(columns) if columns is not None else self.source.column_names
        # An unconstrained box generates every tuple exactly once; batches
        # are anchored per summary segment rather than at offset 0, which
        # only changes block boundaries — concatenated output (what
        # ``fetch_columns``/``materialize``/``iter_rows`` consume) is
        # identical to the serial route.
        for start, generated, _matched, block in self._iter_merged(
            source, BoxCondition({}), requested, effective_batch
        ):
            yield start, generated, block

    def iter_filtered_blocks(
        self,
        predicate: "Predicate | None" = None,
        box: "BoxCondition | None" = None,
        columns: Sequence[str] | None = None,
        batch_size: int | None = None,
        skip_box: "BoxCondition | None" = None,
    ) -> Iterator[tuple[int, int, int, dict[str, NDArray[Any]]]]:
        source = self._parallel_source()
        if source is None or box is None:
            yield from super().iter_filtered_blocks(
                predicate=predicate,
                box=box,
                columns=columns,
                batch_size=batch_size,
                skip_box=skip_box,
            )
            return
        effective_batch = batch_size or self.batch_size
        requested = list(columns) if columns is not None else self.source.column_names
        yield from self._iter_merged(source, box, requested, effective_batch, skip_box)
