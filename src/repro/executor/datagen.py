"""The ``datagen`` dynamic-regeneration scan.

The paper adds a ``datagen`` property to PostgreSQL relations: when enabled,
the traditional scan operator is replaced by an operator that produces the
relation's tuples on the fly from the HYDRA summary instead of reading them
from disk.  :class:`DataGenRelation` is the equivalent here — a relation
provider that wraps any *row source* (in practice a
:class:`~repro.core.tuplegen.TupleGenerator`), streams its rows in batches
through an optional :class:`~repro.executor.rate.RateLimiter`, and can also
materialise the relation on request (the per-relation choice offered by the
demo's vendor interface).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from ..storage.table import TableData
from .rate import RateLimiter

from ..sql.expressions import columns_with_dependencies

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sql.expressions import BoxCondition, Predicate

__all__ = ["RowSource", "DataGenRelation", "GenerationStats"]


@runtime_checkable
class RowSource(Protocol):
    """The minimal interface a dataless row source must provide."""

    @property
    def row_count(self) -> int:  # pragma: no cover - protocol signature
        ...

    @property
    def column_names(self) -> list[str]:  # pragma: no cover - protocol signature
        ...

    def row(self, index: int) -> tuple:  # pragma: no cover - protocol signature
        ...

    def generate_block(
        self, start: int, count: int, columns: Sequence[str] | None = None
    ) -> dict[str, np.ndarray]:  # pragma: no cover - protocol signature
        ...


@dataclass
class GenerationStats:
    """Bookkeeping for one regeneration run (exposed by the demo's UI)."""

    rows_generated: int = 0
    batches: int = 0
    seconds_throttled: float = 0.0


@dataclass
class DataGenRelation:
    """Relation provider that regenerates tuples on demand from a summary."""

    source: RowSource
    rate_limiter: RateLimiter = field(default_factory=RateLimiter.unlimited)
    batch_size: int = 8192
    stats: GenerationStats = field(default_factory=GenerationStats)

    # -- provider protocol -------------------------------------------------

    @property
    def row_count(self) -> int:
        return self.source.row_count

    @property
    def column_names(self) -> list[str]:
        return self.source.column_names

    def row(self, index: int) -> tuple:
        return self.source.row(index)

    # -- bulk interface used by the execution engine -----------------------

    def fetch_columns(
        self, columns: Sequence[str], batch_size: int | None = None
    ) -> dict[str, np.ndarray]:
        """Generate the requested columns for the whole relation.

        Generation happens in batches so that the rate limiter can pace the
        stream; the concatenated arrays are returned to the engine.
        """
        effective_batch = batch_size or self.batch_size
        pieces: dict[str, list[np.ndarray]] = {name: [] for name in columns}
        for start, count, block in self.iter_blocks(effective_batch, columns):
            del start, count
            for name in columns:
                pieces[name].append(block[name])
        # A zero-row relation yields no blocks; ask the source for an empty
        # block so each column keeps its schema dtype instead of collapsing
        # to float64 (which would poison join/key dtypes downstream).
        empty: dict[str, np.ndarray] | None = None
        result: dict[str, np.ndarray] = {}
        for name, chunks in pieces.items():
            if chunks:
                result[name] = np.concatenate(chunks)
            else:
                if empty is None:
                    empty = self.source.generate_block(0, 0, list(columns))
                result[name] = np.asarray(empty[name])
        return result

    def iter_blocks(
        self, batch_size: int | None = None, columns: Sequence[str] | None = None
    ) -> Iterator[tuple[int, int, dict[str, np.ndarray]]]:
        """Yield ``(start, count, columns)`` blocks, honouring the rate limit."""
        effective_batch = batch_size or self.batch_size
        total = self.source.row_count
        requested = list(columns) if columns is not None else self.source.column_names
        start = 0
        while start < total:
            count = min(effective_batch, total - start)
            block = self.source.generate_block(start, count, requested)
            self.stats.rows_generated += count
            self.stats.batches += 1
            self.stats.seconds_throttled += self.rate_limiter.throttle(count)
            yield start, count, block
            start += count

    def iter_filtered_blocks(
        self,
        predicate: "Predicate | None" = None,
        box: "BoxCondition | None" = None,
        columns: Sequence[str] | None = None,
        batch_size: int | None = None,
        skip_box: "BoxCondition | None" = None,
    ) -> Iterator[tuple[int, int, int, dict[str, np.ndarray]]]:
        """Stream ``(start, generated, matched, block)`` with only matching rows.

        When the row source understands box conditions (a
        :class:`~repro.core.tuplegen.TupleGenerator`) and ``box`` is given,
        filtering is pushed all the way into tuple generation, which skips
        summary-row segments that cannot match.  Otherwise rows are generated
        batch-by-batch and masked with ``predicate`` (falling back to the box,
        converted to a predicate, when only a box is given).  Either way peak
        memory is bounded by the batch size plus the matching rows, and the
        rate limiter paces the *generated* tuples.

        ``skip_box`` (a semi-join pushdown, see
        :meth:`~repro.core.tuplegen.TupleGenerator.iter_filtered_blocks`) is
        honoured only on the summary-backed path, where segments it excludes
        can be replaced by an exact ``matched`` count without generation; the
        masking fallback ignores it, leaving the consumer to apply it.
        """
        effective_batch = batch_size or self.batch_size
        requested = list(columns) if columns is not None else self.source.column_names
        source_filtered = getattr(self.source, "iter_filtered_blocks", None)
        if box is not None and callable(source_filtered):
            for start, generated, matched, block in source_filtered(
                box, batch_size=effective_batch, columns=requested, skip_box=skip_box
            ):
                self.stats.rows_generated += generated
                if generated:
                    self.stats.batches += 1
                    self.stats.seconds_throttled += self.rate_limiter.throttle(generated)
                yield start, generated, matched, block
            return

        condition = predicate
        if condition is None and box is not None:
            condition = box.to_predicate()
        needed = requested
        if condition is not None:
            needed = columns_with_dependencies(requested, condition.columns())
        for start, count, block in self.iter_blocks(effective_batch, needed):
            if condition is None:
                yield start, count, count, {name: block[name] for name in requested}
                continue
            mask = condition.evaluate(block)
            matched = int(mask.sum())
            if matched == count:
                out = {name: block[name] for name in requested}
            else:
                out = {name: block[name][mask] for name in requested}
            yield start, count, matched, out

    def iter_rows(self, batch_size: int | None = None) -> Iterator[tuple]:
        """Stream decodable row tuples (used by examples and the CLI)."""
        names = self.source.column_names
        for start, count, block in self.iter_blocks(batch_size):
            for offset in range(count):
                yield tuple(block[name][offset] for name in names)
            del start

    # -- optional materialisation ------------------------------------------

    def materialize(self, table) -> TableData:
        """Materialise the full relation into a :class:`TableData`.

        ``table`` is the schema :class:`~repro.catalog.schema.Table` this
        relation instantiates.  This mirrors the demo's per-relation
        "materialise instead of dynamic generation" switch.
        """
        columns = self.fetch_columns(table.column_names)
        return TableData.from_columns(table, columns)
