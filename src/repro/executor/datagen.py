"""The ``datagen`` dynamic-regeneration scan.

The paper adds a ``datagen`` property to PostgreSQL relations: when enabled,
the traditional scan operator is replaced by an operator that produces the
relation's tuples on the fly from the HYDRA summary instead of reading them
from disk.  :class:`DataGenRelation` is the equivalent here — a relation
provider that wraps any *row source* (in practice a
:class:`~repro.core.tuplegen.TupleGenerator`), streams its rows in batches
through an optional :class:`~repro.executor.rate.RateLimiter`, and can also
materialise the relation on request (the per-relation choice offered by the
demo's vendor interface).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from ..storage.table import TableData
from .rate import RateLimiter

__all__ = ["RowSource", "DataGenRelation", "GenerationStats"]


@runtime_checkable
class RowSource(Protocol):
    """The minimal interface a dataless row source must provide."""

    @property
    def row_count(self) -> int:  # pragma: no cover - protocol signature
        ...

    @property
    def column_names(self) -> list[str]:  # pragma: no cover - protocol signature
        ...

    def row(self, index: int) -> tuple:  # pragma: no cover - protocol signature
        ...

    def generate_block(
        self, start: int, count: int, columns: Sequence[str] | None = None
    ) -> dict[str, np.ndarray]:  # pragma: no cover - protocol signature
        ...


@dataclass
class GenerationStats:
    """Bookkeeping for one regeneration run (exposed by the demo's UI)."""

    rows_generated: int = 0
    batches: int = 0
    seconds_throttled: float = 0.0


@dataclass
class DataGenRelation:
    """Relation provider that regenerates tuples on demand from a summary."""

    source: RowSource
    rate_limiter: RateLimiter = field(default_factory=RateLimiter.unlimited)
    batch_size: int = 8192
    stats: GenerationStats = field(default_factory=GenerationStats)

    # -- provider protocol -------------------------------------------------

    @property
    def row_count(self) -> int:
        return self.source.row_count

    @property
    def column_names(self) -> list[str]:
        return self.source.column_names

    def row(self, index: int) -> tuple:
        return self.source.row(index)

    # -- bulk interface used by the execution engine -----------------------

    def fetch_columns(
        self, columns: Sequence[str], batch_size: int | None = None
    ) -> dict[str, np.ndarray]:
        """Generate the requested columns for the whole relation.

        Generation happens in batches so that the rate limiter can pace the
        stream; the concatenated arrays are returned to the engine.
        """
        effective_batch = batch_size or self.batch_size
        pieces: dict[str, list[np.ndarray]] = {name: [] for name in columns}
        for start, count, block in self.iter_blocks(effective_batch, columns):
            del start, count
            for name in columns:
                pieces[name].append(block[name])
        return {
            name: (np.concatenate(chunks) if chunks else np.empty(0, dtype=np.float64))
            for name, chunks in pieces.items()
        }

    def iter_blocks(
        self, batch_size: int | None = None, columns: Sequence[str] | None = None
    ) -> Iterator[tuple[int, int, dict[str, np.ndarray]]]:
        """Yield ``(start, count, columns)`` blocks, honouring the rate limit."""
        effective_batch = batch_size or self.batch_size
        total = self.source.row_count
        requested = list(columns) if columns is not None else self.source.column_names
        start = 0
        while start < total:
            count = min(effective_batch, total - start)
            block = self.source.generate_block(start, count, requested)
            self.stats.rows_generated += count
            self.stats.batches += 1
            self.stats.seconds_throttled += self.rate_limiter.throttle(count)
            yield start, count, block
            start += count

    def iter_rows(self, batch_size: int | None = None) -> Iterator[tuple]:
        """Stream decodable row tuples (used by examples and the CLI)."""
        names = self.source.column_names
        for start, count, block in self.iter_blocks(batch_size):
            for offset in range(count):
                yield tuple(block[name][offset] for name in names)
            del start

    # -- optional materialisation ------------------------------------------

    def materialize(self, table) -> TableData:
        """Materialise the full relation into a :class:`TableData`.

        ``table`` is the schema :class:`~repro.catalog.schema.Table` this
        relation instantiates.  This mirrors the demo's per-relation
        "materialise instead of dynamic generation" switch.
        """
        columns = self.fetch_columns(table.column_names)
        return TableData.from_columns(table, columns)
