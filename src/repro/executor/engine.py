"""Vectorised execution engine for SPJ plans.

The engine plays two roles in the reproduction of HYDRA:

* at the **client site** it executes the workload over the materialised
  customer database and records each operator's output cardinality — this is
  how Annotated Query Plans are produced;
* at the **vendor site** it executes the very same plans over the regenerated
  (dataless or materialised) database so that volumetric similarity can be
  verified, and it is the harness inside which the ``datagen`` dynamic
  regeneration scan operator runs.

Execution is column-vectorised: every operator consumes and produces a block
of NumPy column arrays keyed by qualified ``table.column`` names.  Relations
that are not materialised are pulled through their provider's bulk interface
(`fetch_columns`) when available, falling back to row-at-a-time generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..catalog.schema import Schema, Table
from ..plans.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    leaf_scan,
)
from ..plans.planner import (
    ScanPushdown,
    compute_pushdowns,
    compute_semijoin_pushdowns,
    exact_predicate_box,
    fk_join_edge,
)
from ..sql.expressions import (
    BoxCondition,
    IntervalSet,
    Predicate,
    columns_with_dependencies,
)
from ..storage.database import Database, MaterializedRelation, RelationProvider

__all__ = ["ExecutionResult", "ExecutionEngine", "ExecutorError"]


class ExecutorError(RuntimeError):
    """Raised when a plan cannot be executed against the given database."""


@dataclass
class ExecutionResult:
    """Output block of a plan execution."""

    columns: dict[str, np.ndarray]
    row_count: int
    scanned_rows: int = 0

    def column(self, name: str) -> np.ndarray:
        if name in self.columns:
            return self.columns[name]
        matches = [key for key in self.columns if key.endswith("." + name)]
        if len(matches) == 1:
            return self.columns[matches[0]]
        if matches:
            raise KeyError(
                f"column {name!r} is ambiguous in result, "
                f"candidates: {sorted(matches)}"
            )
        raise KeyError(f"result has no column {name!r}")

    def rows(self, limit: int | None = None) -> list[tuple[Any, ...]]:
        count = self.row_count if limit is None else min(limit, self.row_count)
        names = list(self.columns)
        return [tuple(self.columns[name][i] for name in names) for i in range(count)]


@dataclass
class _Block:
    """Internal intermediate result: qualified column arrays + row count."""

    columns: dict[str, np.ndarray]
    row_count: int


@dataclass
class ExecutionEngine:
    """Executes plan trees over a :class:`Database`.

    With ``pushdown`` enabled (the default) every scan generates only the
    columns referenced upstream, and a filter sitting directly on a scan is
    fused into it: dataless relations stream batch-by-batch through the
    predicate so peak memory is bounded by the batch size plus the matching
    rows, never O(rows × columns) of the whole relation.  With
    ``summary_fastpath`` enabled, ``COUNT`` aggregates over a single
    summary-backed relation — or over a single key/foreign-key join of two
    summary-backed relations — are answered directly from the relation
    summaries (count × interval arithmetic, O(#summary rows)) whenever the
    pushed filters are expressible as box conditions and the summaries can
    answer them exactly; otherwise execution falls back to the streaming
    scan.  With ``streaming_join`` enabled (requires ``pushdown``), joins
    with a dataless leaf input run build/probe: the smaller side (by summary
    cardinality) is materialised as the build table and the other side is
    streamed through it batch-by-batch, with semi-join FK pushdown skipping
    probe summary segments that cannot join.  All knobs leave every AQP
    annotation and every output block bit-identical to the naive route.

    Parallel regeneration is transparent to the engine: when a relation is
    attached as a :class:`~repro.executor.datagen.ParallelDataGenRelation`,
    every streaming consumer here (fused filter+scan, streaming-join probe,
    ``fetch_columns``) receives the ordered merge of the worker shards
    through the same ``iter_filtered_blocks``/``fetch_columns`` interface —
    filtered block streams are yield-for-yield identical to serial
    generation and fetched columns are value-identical, so results, row
    order, ``scanned_rows`` and annotations do not depend on the worker
    count.
    """

    database: Database
    annotate: bool = True
    batch_size: int = 65536
    pushdown: bool = True
    summary_fastpath: bool = True
    streaming_join: bool = True
    _scanned_rows: int = field(default=0, init=False)
    _pushdowns: dict[int, ScanPushdown] = field(default_factory=dict, init=False)
    _semijoins: dict[int, BoxCondition] = field(default_factory=dict, init=False)

    @property
    def schema(self) -> Schema:
        return self.database.schema

    # -- public API ------------------------------------------------------

    def execute(self, plan: PlanNode) -> ExecutionResult:
        """Execute a plan, optionally annotating node cardinalities in place."""
        self._scanned_rows = 0
        self._pushdowns = compute_pushdowns(plan, self.schema) if self.pushdown else {}
        self._semijoins = (
            compute_semijoin_pushdowns(plan, self.schema, self._plan_summaries(plan))
            if self.pushdown and self.streaming_join
            else {}
        )
        block = self._execute_node(plan)
        return ExecutionResult(
            columns=block.columns,
            row_count=block.row_count,
            scanned_rows=self._scanned_rows,
        )

    # -- node dispatch ---------------------------------------------------

    def _execute_node(self, node: PlanNode) -> _Block:
        if isinstance(node, ScanNode):
            block = self._execute_scan(node)
        elif isinstance(node, FilterNode):
            block = self._execute_filter(node)
        elif isinstance(node, JoinNode):
            block = self._execute_join(node)
        elif isinstance(node, ProjectNode):
            block = self._execute_project(node)
        elif isinstance(node, AggregateNode):
            block = self._execute_aggregate(node)
        else:
            raise ExecutorError(f"unsupported plan node {type(node).__name__}")
        if self.annotate:
            node.cardinality = block.row_count
        return block

    # -- scans -----------------------------------------------------------

    def _provider_columns(
        self, provider: RelationProvider, table: str, column_names: list[str]
    ) -> dict[str, np.ndarray]:
        """Fetch the requested columns from a provider, however it is backed."""
        if isinstance(provider, MaterializedRelation):
            return {name: provider.column(name) for name in column_names}
        fetch = getattr(provider, "fetch_columns", None)
        if callable(fetch):
            fetched: Mapping[str, np.ndarray] = fetch(column_names, batch_size=self.batch_size)
            return {name: np.asarray(fetched[name]) for name in column_names}
        # Last resort: row-at-a-time generation through the provider protocol.
        # Arrays take the schema column dtypes: collapsing everything to
        # float64 here would poison join/key dtypes downstream.
        table_obj = self.schema.table(table)
        order = provider.column_names
        indices = [order.index(name) for name in column_names]
        rows = [provider.row(i) for i in range(provider.row_count)]
        return {
            name: np.asarray(
                [row[idx] for row in rows],
                dtype=table_obj.column(name).dtype.numpy_dtype,
            )
            for name, idx in zip(column_names, indices)
        }

    def _relation_summary(self, table_name: str):
        """The relation summary backing a dataless provider, if any."""
        try:
            provider = self.database.provider(table_name)
        except KeyError:
            return None
        source = getattr(provider, "source", None)
        summary = getattr(source, "summary", None)
        if summary is None or not callable(getattr(summary, "count_matching", None)):
            return None
        return summary

    def _plan_summaries(self, plan: PlanNode) -> dict[str, Any]:
        """Summaries of every summary-backed relation scanned by the plan."""
        summaries: dict[str, Any] = {}
        for node in plan.iter_nodes():
            if isinstance(node, ScanNode) and node.table not in summaries:
                summary = self._relation_summary(node.table)
                if summary is not None and callable(
                    getattr(summary, "matching_pk_intervals", None)
                ):
                    summaries[node.table] = summary
        return summaries

    @staticmethod
    def _ordered_columns(selection: tuple[str, ...] | None, table: Table) -> list[str]:
        """A pushdown column selection in schema order (``None`` = all)."""
        if selection is None:
            return table.column_names
        wanted = set(selection)
        return [name for name in table.column_names if name in wanted]

    def _scan_column_names(self, node: ScanNode, table: Table) -> list[str]:
        push = self._pushdowns.get(node.node_id)
        return self._ordered_columns(
            None if push is None else push.generate_columns, table
        )

    def _execute_scan(self, node: ScanNode) -> _Block:
        table = self.schema.table(node.table)
        provider = self.database.provider(node.table)
        names = self._scan_column_names(node, table)
        columns = self._provider_columns(provider, node.table, names) if names else {}
        qualified = {f"{node.table}.{name}": values for name, values in columns.items()}
        self._scanned_rows += provider.row_count
        return _Block(columns=qualified, row_count=provider.row_count)

    # -- filters ----------------------------------------------------------

    def _predicate_box(self, predicate: Predicate, table: Table) -> BoxCondition | None:
        """Convert a predicate to an *exactly equivalent* box, else ``None``.

        Delegates to :func:`~repro.plans.planner.exact_predicate_box`: when
        the box would be an epsilon-approximation the streaming scan masks
        with the original predicate instead and the fast paths do not apply,
        keeping every route bit-identical.
        """
        return exact_predicate_box(predicate, table)

    def _empty_column(self, table: Table, name: str) -> np.ndarray:
        return np.empty(0, dtype=table.column(name).dtype.numpy_dtype)

    def _execute_filtered_scan(self, scan: ScanNode, node: FilterNode) -> _Block:
        """Fused filter+scan: stream batches, keep only matching rows.

        The scan is annotated with the full relation cardinality and the
        returned block carries the filtered rows, so AQP annotations are
        identical to the unfused route while the dataless relation is never
        materialised in full.
        """
        table = self.schema.table(scan.table)
        provider = self.database.provider(scan.table)
        predicate = node.predicate
        push = self._pushdowns.get(scan.node_id)
        output = self._ordered_columns(
            None if push is None else push.output_columns, table
        )

        if not predicate.columns():
            # Column-free predicate (TruePredicate, empty conjunction/
            # disjunction from a deserialised AQP): its verdict is constant,
            # so decide it once instead of masking per batch — a length-0
            # column dict would otherwise produce a length-0 mask.
            verdict = bool(predicate.evaluate({"_": np.zeros(1, dtype=np.float64)})[0])
            if self.annotate:
                scan.cardinality = provider.row_count
            if not verdict:
                return _Block(
                    columns={
                        f"{scan.table}.{name}": self._empty_column(table, name)
                        for name in output
                    },
                    row_count=0,
                )
            local = self._provider_columns(provider, scan.table, output) if output else {}
            self._scanned_rows += provider.row_count
            return _Block(
                columns={f"{scan.table}.{name}": values for name, values in local.items()},
                row_count=provider.row_count,
            )

        if callable(getattr(provider, "iter_filtered_blocks", None)):
            box = self._predicate_box(predicate, table)
            pieces: dict[str, list[np.ndarray]] = {name: [] for name in output}
            matched = 0
            for _start, generated, batch_matched, block in provider.iter_filtered_blocks(
                predicate=predicate, box=box, columns=output, batch_size=self.batch_size
            ):
                self._scanned_rows += generated
                if batch_matched == 0:
                    continue
                matched += batch_matched
                for name in output:
                    pieces[name].append(block[name])
            columns = {
                f"{scan.table}.{name}": (
                    np.concatenate(chunks) if chunks else self._empty_column(table, name)
                )
                for name, chunks in pieces.items()
            }
        else:
            needed = columns_with_dependencies(output, predicate.columns())
            local = self._provider_columns(provider, scan.table, needed)
            mask = predicate.evaluate(local)
            matched = int(mask.sum())
            columns = {f"{scan.table}.{name}": local[name][mask] for name in output}
            self._scanned_rows += provider.row_count

        if self.annotate:
            scan.cardinality = provider.row_count
        return _Block(columns=columns, row_count=matched)

    def _execute_filter(self, node: FilterNode) -> _Block:
        if self.pushdown and isinstance(node.child, ScanNode):
            # Fuse exactly when the planner's pushdown pass marked this
            # filter as pushable into the scan — one source of truth for the
            # fusion decision and the column bookkeeping it implies.
            push = self._pushdowns.get(node.child.node_id)
            if push is not None and push.predicate is node.predicate:
                return self._execute_filtered_scan(node.child, node)
        child = self._execute_node(node.child)
        prefix = node.table + "."
        local = {
            name[len(prefix):]: values
            for name, values in child.columns.items()
            if name.startswith(prefix)
        }
        if not local:
            raise ExecutorError(
                f"filter on table {node.table!r} but its columns are absent from the input"
            )
        mask = node.predicate.evaluate(local)
        columns = {name: values[mask] for name, values in child.columns.items()}
        return _Block(columns=columns, row_count=int(mask.sum()))

    # -- joins -------------------------------------------------------------

    def _execute_join(self, node: JoinNode) -> _Block:
        if self.pushdown and self.streaming_join:
            block = self._execute_streaming_join(node)
            if block is not None:
                return block
        left = self._execute_node(node.left)
        right = self._execute_node(node.right)
        condition = node.condition

        left_key_name = f"{condition.left_table}.{condition.left_column}"
        right_key_name = f"{condition.right_table}.{condition.right_column}"
        if left_key_name in left.columns and right_key_name in right.columns:
            left_keys, right_keys = left.columns[left_key_name], right.columns[right_key_name]
        elif right_key_name in left.columns and left_key_name in right.columns:
            left_keys, right_keys = left.columns[right_key_name], right.columns[left_key_name]
        else:
            raise ExecutorError(f"join keys {left_key_name}/{right_key_name} not available")

        left_indices, right_indices = _hash_join_indices(left_keys, right_keys)
        columns: dict[str, np.ndarray] = {}
        for name, values in left.columns.items():
            columns[name] = values[left_indices]
        for name, values in right.columns.items():
            columns[name] = values[right_indices]
        return _Block(columns=columns, row_count=int(len(left_indices)))

    def _streamable_leaf(self, child: PlanNode) -> tuple[ScanNode, FilterNode | None] | None:
        """The child's leaf access path, if it can be streamed as a probe side."""
        leaf = leaf_scan(child)
        if leaf is None:
            return None
        scan, filter_node = leaf
        if not self.schema.has_table(scan.table):
            return None
        try:
            provider = self.database.provider(scan.table)
        except KeyError:
            return None
        if not callable(getattr(provider, "iter_filtered_blocks", None)):
            return None
        if filter_node is not None:
            push = self._pushdowns.get(scan.node_id)
            if push is None or push.predicate is not filter_node.predicate:
                return None
            if not filter_node.predicate.columns():
                # Column-free predicates have a constant verdict; the fused
                # filtered-scan route handles them, keep joins off them.
                return None
        return leaf

    def _estimated_leaf_rows(self, scan: ScanNode, filter_node: FilterNode | None) -> int:
        """Summary-estimated output rows of a leaf (exact when computable)."""
        provider = self.database.provider(scan.table)
        total = provider.row_count
        if filter_node is None:
            return total
        summary = self._relation_summary(scan.table)
        if summary is None:
            return total
        table = self.schema.table(scan.table)
        box = self._predicate_box(filter_node.predicate, table)
        if box is None:
            return total
        count = summary.count_matching(box, pk_column=table.primary_key)
        return total if count is None else int(count)

    def _execute_streaming_join(self, node: JoinNode) -> _Block | None:
        """Build/probe hash join with the probe side streamed batch-by-batch.

        The build side — chosen as the input with the smaller summary
        cardinality — is materialised by ordinary (itself pushdown-enabled)
        execution; the probe side, which must be the leaf access path of a
        relation that supports filtered block iteration, streams through the
        build hash table so peak memory is O(build + batch + output) instead
        of O(both relations).  A semi-join box computed by the planner
        (:func:`~repro.plans.planner.compute_semijoin_pushdowns`) lets whole
        probe summary segments be skipped — their contribution to the probe
        filter's AQP annotation is recovered exactly from the summary — and
        masks generated probe rows that provably have no join partner.
        Output rows, column order and all annotations are bit-identical to
        the materialising route.  Returns ``None`` when the pattern does not
        apply (the caller then materialises both inputs).
        """
        condition = node.condition
        if condition.left_table == condition.right_table:
            return None  # self-joins keep the materialising route
        left_leaf = self._streamable_leaf(node.left)
        right_leaf = self._streamable_leaf(node.right)
        if left_leaf is None and right_leaf is None:
            return None
        if left_leaf is not None and right_leaf is not None:
            left_rows = self._estimated_leaf_rows(*left_leaf)
            right_rows = self._estimated_leaf_rows(*right_leaf)
            probe_is_left = left_rows >= right_rows
        else:
            probe_is_left = left_leaf is not None
        scan, filter_node = left_leaf if probe_is_left else right_leaf  # type: ignore[misc]
        if not condition.involves(scan.table):
            return None
        probe_key = condition.side_column(scan.table)
        build_table, build_key = condition.other_side(scan.table)
        table = self.schema.table(scan.table)
        if not table.has_column(probe_key):
            return None
        provider = self.database.provider(scan.table)

        push = self._pushdowns.get(scan.node_id)
        output = self._ordered_columns(
            None if push is None else push.output_columns, table
        )
        if probe_key not in output:
            return None  # the join key must flow out of the probe scan
        predicate = filter_node.predicate if filter_node is not None else None
        box = (
            self._predicate_box(predicate, table)
            if predicate is not None
            else BoxCondition({})
        )
        semijoin = self._semijoins.get(scan.node_id)
        if semijoin is not None and not set(semijoin.conditions) <= set(output):
            semijoin = None

        build = self._execute_node(node.right if probe_is_left else node.left)
        build_key_name = f"{build_table}.{build_key}"
        if build_key_name not in build.columns:
            raise ExecutorError(
                f"join keys {scan.table}.{probe_key}/{build_key_name} not available"
            )
        build_keys = build.columns[build_key_name]

        stream_kwargs: dict[str, Any] = dict(
            predicate=predicate, box=box, columns=output, batch_size=self.batch_size
        )
        if semijoin is not None:
            stream_kwargs["skip_box"] = semijoin
        matched_total = 0
        probe_chunks: dict[str, list[np.ndarray]] = {name: [] for name in output}
        build_index_chunks: list[np.ndarray] = []
        for _start, generated, batch_matched, block in provider.iter_filtered_blocks(
            **stream_kwargs
        ):
            self._scanned_rows += generated
            matched_total += batch_matched
            if batch_matched == 0 or not block:
                # Semi-join-skipped segment: only its exact filter count
                # matters; none of its rows can produce a join partner.
                continue
            batch = block
            if semijoin is not None and generated:
                semi_mask = semijoin.evaluate(batch)
                if not semi_mask.all():
                    batch = {name: values[semi_mask] for name, values in batch.items()}
            probe_idx, build_idx = _hash_join_indices(batch[probe_key], build_keys)
            if len(probe_idx) == 0:
                continue
            for name in output:
                probe_chunks[name].append(batch[name][probe_idx])
            build_index_chunks.append(build_idx)

        if self.annotate:
            scan.cardinality = provider.row_count
            if filter_node is not None:
                filter_node.cardinality = matched_total

        build_indices = (
            np.concatenate(build_index_chunks)
            if build_index_chunks
            else np.empty(0, dtype=np.int64)
        )
        probe_columns = {
            name: (np.concatenate(chunks) if chunks else self._empty_column(table, name))
            for name, chunks in probe_chunks.items()
        }
        if not probe_is_left:
            # The materialising route orders output by left (here: build) row,
            # each left row's matches in probe order; a stable sort on the
            # accumulated build indices restores exactly that order.
            perm = np.argsort(build_indices, kind="stable")
            build_indices = build_indices[perm]
            probe_columns = {name: values[perm] for name, values in probe_columns.items()}

        probe_qualified = {
            f"{scan.table}.{name}": values for name, values in probe_columns.items()
        }
        build_gathered = {
            name: values[build_indices] for name, values in build.columns.items()
        }
        if probe_is_left:
            columns = {**probe_qualified, **build_gathered}
        else:
            columns = {**build_gathered, **probe_qualified}
        return _Block(columns=columns, row_count=int(len(build_indices)))

    # -- projection / aggregation -----------------------------------------

    def _resolve_output_column(self, block: _Block, name: str) -> str:
        if name in block.columns:
            return name
        matches = [key for key in block.columns if key.endswith("." + name)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ExecutorError(f"projection column {name!r} not found")
        raise ExecutorError(f"projection column {name!r} is ambiguous: {matches}")

    def _execute_project(self, node: ProjectNode) -> _Block:
        child = self._execute_node(node.child)
        columns: dict[str, np.ndarray] = {}
        for name in node.columns:
            resolved = self._resolve_output_column(child, name)
            columns[resolved] = child.columns[resolved]
        return _Block(columns=columns, row_count=child.row_count)

    def _execute_aggregate(self, node: AggregateNode) -> _Block:
        if node.function != "count":
            raise ExecutorError(f"unsupported aggregate {node.function!r}")
        if self.summary_fastpath:
            fast = self._summary_count(node.child)
            if fast is None:
                fast = self._summary_join_count(node.child)
            if fast is not None:
                return _Block(
                    columns={"count": np.asarray([fast], dtype=np.int64)},
                    row_count=1,
                )
        child = self._execute_node(node.child)
        return _Block(
            columns={"count": np.asarray([child.row_count], dtype=np.int64)},
            row_count=1,
        )

    def _summary_count(self, child: PlanNode) -> int | None:
        """Answer a COUNT aggregate straight from a relation summary.

        Applies when the aggregate input is a (possibly filtered) scan of a
        summary-backed dataless relation and the filter normalises to a box
        condition the summary can count *exactly* (see
        :meth:`~repro.core.summary.RelationSummary.count_matching`); returns
        ``None`` otherwise so the caller falls back to streaming execution.
        Annotates the scan/filter nodes with the same cardinalities streaming
        would produce, without generating a single tuple.
        """
        leaf = leaf_scan(child)
        if leaf is None:
            return None
        scan, filter_node = leaf

        summary = self._relation_summary(scan.table)
        if summary is None:
            return None
        provider = self.database.provider(scan.table)

        table = self.schema.table(scan.table)
        if filter_node is None:
            box = BoxCondition({})
        else:
            box = self._predicate_box(filter_node.predicate, table)
            if box is None:
                return None
        count = summary.count_matching(box, pk_column=table.primary_key)
        if count is None:
            return None
        if self.annotate:
            scan.cardinality = provider.row_count
            if filter_node is not None:
                filter_node.cardinality = int(count)
        return int(count)

    def _summary_join_count(self, child: PlanNode) -> int | None:
        """Answer COUNT over a single FK–PK join straight from the summaries.

        Applies when both join inputs are leaf access paths of summary-backed
        dataless relations, the join follows the schema's foreign-key edge
        onto the referenced primary key, and both pushed filters normalise to
        exact boxes.  The referenced side's exactly-matching pk indices are
        projected with
        :meth:`~repro.core.summary.RelationSummary.matching_pk_intervals`
        (``exact=True``); each referencing summary row then contributes the
        :meth:`~repro.core.summary.FKReference.count_matching_offsets` of its
        round-robin spread against those intervals — O(#summary rows) total,
        zero tuples generated, and exact because every referencing tuple
        joins at most one (unique, auto-numbered) referenced pk.  Returns
        ``None`` whenever any step is not exactly countable, so the caller
        falls back to streaming execution — mirroring :meth:`_summary_count`'s
        bit-identical guarantee.  Annotates both leaves and the join node
        with the cardinalities streaming would produce.
        """
        if not isinstance(child, JoinNode):
            return None
        condition = child.condition
        edge = fk_join_edge(condition, self.schema)
        if edge is None:
            return None
        fk_table_name, fk_column, ref_table_name, ref_column = edge
        left_leaf = leaf_scan(child.left)
        right_leaf = leaf_scan(child.right)
        if left_leaf is None or right_leaf is None:
            return None
        leaves = {leaf[0].table: leaf for leaf in (left_leaf, right_leaf)}
        if set(leaves) != {condition.left_table, condition.right_table}:
            return None

        fk_scan, fk_filter = leaves[fk_table_name]
        ref_scan, ref_filter = leaves[ref_table_name]
        fk_summary = self._relation_summary(fk_table_name)
        ref_summary = self._relation_summary(ref_table_name)
        if fk_summary is None or ref_summary is None:
            return None
        if not callable(getattr(ref_summary, "matching_pk_intervals", None)):
            return None
        fk_table = self.schema.table(fk_table_name)
        ref_table = self.schema.table(ref_table_name)

        ref_box = BoxCondition({})
        if ref_filter is not None:
            ref_box = self._predicate_box(ref_filter.predicate, ref_table)
            if ref_box is None:
                return None
        fk_box = BoxCondition({})
        if fk_filter is not None:
            fk_box = self._predicate_box(fk_filter.predicate, fk_table)
            if fk_box is None:
                return None
        ref_intervals = ref_summary.matching_pk_intervals(
            ref_box, pk_column=ref_column, exact=True
        )
        if ref_intervals is None:
            return None

        counted = self._count_fk_rows_joining(
            fk_summary, fk_table, fk_column, fk_box, ref_intervals
        )
        if counted is None:
            return None
        filter_matched, joined = counted

        if self.annotate:
            fk_scan.cardinality = self.database.provider(fk_table_name).row_count
            ref_scan.cardinality = self.database.provider(ref_table_name).row_count
            if fk_filter is not None:
                fk_filter.cardinality = int(filter_matched)
            if ref_filter is not None:
                ref_filter.cardinality = int(ref_intervals.count_integers())
            child.cardinality = int(joined)
        return int(joined)

    def _count_fk_rows_joining(
        self,
        fk_summary: Any,
        fk_table: Table,
        fk_column: str,
        fk_box: BoxCondition,
        ref_intervals: IntervalSet,
    ) -> tuple[int, int] | None:
        """``(filter_matched, joined)`` counts of the referencing relation.

        ``filter_matched`` is the number of referencing tuples satisfying
        ``fk_box`` (the FK side's own filter annotation); ``joined`` is the
        subset whose FK target additionally lands in ``ref_intervals`` (the
        referenced pks that survive the other side's filter).  Both build on
        :meth:`~repro.core.summary.RelationSummary.classify_row` — the one
        place the per-row pass/fail/partial arithmetic lives — plus
        round-robin prefix counting for the join; returns ``None`` when a
        row's matched subset is not exactly countable (two partially
        matching columns, or a partial on a foreign key other than the join
        key, are correlated through the tuple offset).
        """
        pk_column = fk_table.primary_key
        filter_matched = 0
        joined = 0
        for position, row in enumerate(fk_summary.rows):
            match = fk_summary.classify_row(position, fk_box, pk_column=pk_column)
            if match is None:
                continue
            if match.partial_columns > 1:
                return None
            if any(column != fk_column for column in match.partial_fks):
                return None
            own_fk = match.partial_fks.get(fk_column)
            count = match.count

            if fk_column in row.fk_refs:
                ref = row.fk_refs[fk_column]
                allowed = (
                    ref_intervals
                    if own_fk is None
                    else ref_intervals.intersect(own_fk[0])
                )
                if match.pk_window is not None:
                    # Offsets are pk indices shifted by the segment start, so
                    # a pk window is an offset range; prefix-count differences
                    # of the round-robin spread count its joining tuples.
                    start, _end = fk_summary.pk_interval_of_row(position)
                    row_joined = 0
                    for piece in match.pk_window:
                        low = int(math.ceil(piece.low)) - start
                        high = low + piece.count_integers()
                        row_joined += ref.count_matching_offsets(
                            high, allowed
                        ) - ref.count_matching_offsets(low, allowed)
                    row_filter = match.pk_window.count_integers()
                elif own_fk is not None:
                    row_joined = ref.count_matching_offsets(count, allowed)
                    row_filter = own_fk[1]
                else:
                    row_joined = ref.count_matching_offsets(count, allowed)
                    row_filter = count
            else:
                # The FK column is generated as a constant representative
                # value for every tuple of this row.
                value = float(row.values.get(fk_column, 0.0))
                row_filter = (
                    match.pk_window.count_integers()
                    if match.pk_window is not None
                    else count
                )
                row_joined = row_filter if ref_intervals.contains(value) else 0
            filter_matched += row_filter
            joined += row_joined
        return filter_matched, joined


def _hash_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return index pairs (left_idx, right_idx) of matching key values.

    Implemented as a fully vectorised sort-merge join (duplicates on either
    side are handled), which keeps the client-site AQP extraction fast even
    for multi-hundred-thousand-row fact tables.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    # Sort the build (right) side once, then locate each probe key's run.
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    run_start = np.searchsorted(sorted_right, left_keys, side="left")
    run_end = np.searchsorted(sorted_right, left_keys, side="right")
    counts = run_end - run_start
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    left_indices = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    cumulative = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cumulative - counts, counts)
    right_positions = np.repeat(run_start, counts) + offsets
    right_indices = order[right_positions]
    return left_indices, right_indices
