"""Vectorised execution engine for SPJ plans.

The engine plays two roles in the reproduction of HYDRA:

* at the **client site** it executes the workload over the materialised
  customer database and records each operator's output cardinality — this is
  how Annotated Query Plans are produced;
* at the **vendor site** it executes the very same plans over the regenerated
  (dataless or materialised) database so that volumetric similarity can be
  verified, and it is the harness inside which the ``datagen`` dynamic
  regeneration scan operator runs.

Execution is column-vectorised: every operator consumes and produces a block
of NumPy column arrays keyed by qualified ``table.column`` names.  Relations
that are not materialised are pulled through their provider's bulk interface
(`fetch_columns`) when available, falling back to row-at-a-time generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..catalog.schema import Schema, Table
from ..plans.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from ..plans.planner import ScanPushdown, compute_pushdowns
from ..sql.expressions import (
    And,
    BoxCondition,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    TruePredicate,
    columns_with_dependencies,
)
from ..storage.database import Database, MaterializedRelation, RelationProvider

__all__ = ["ExecutionResult", "ExecutionEngine", "ExecutorError"]


class ExecutorError(RuntimeError):
    """Raised when a plan cannot be executed against the given database."""


@dataclass
class ExecutionResult:
    """Output block of a plan execution."""

    columns: dict[str, np.ndarray]
    row_count: int
    scanned_rows: int = 0

    def column(self, name: str) -> np.ndarray:
        if name in self.columns:
            return self.columns[name]
        matches = [key for key in self.columns if key.endswith("." + name)]
        if len(matches) == 1:
            return self.columns[matches[0]]
        if matches:
            raise KeyError(
                f"column {name!r} is ambiguous in result, "
                f"candidates: {sorted(matches)}"
            )
        raise KeyError(f"result has no column {name!r}")

    def rows(self, limit: int | None = None) -> list[tuple[Any, ...]]:
        count = self.row_count if limit is None else min(limit, self.row_count)
        names = list(self.columns)
        return [tuple(self.columns[name][i] for name in names) for i in range(count)]


@dataclass
class _Block:
    """Internal intermediate result: qualified column arrays + row count."""

    columns: dict[str, np.ndarray]
    row_count: int


@dataclass
class ExecutionEngine:
    """Executes plan trees over a :class:`Database`.

    With ``pushdown`` enabled (the default) every scan generates only the
    columns referenced upstream, and a filter sitting directly on a scan is
    fused into it: dataless relations stream batch-by-batch through the
    predicate so peak memory is bounded by the batch size plus the matching
    rows, never O(rows × columns) of the whole relation.  With
    ``summary_fastpath`` enabled, ``COUNT`` aggregates over a single
    summary-backed relation are answered directly from the relation summary
    (count × interval arithmetic, O(#summary rows)) whenever the pushed
    filter is expressible as a box condition and the summary can answer it
    exactly; otherwise execution falls back to the streaming scan.  Both
    knobs leave every AQP annotation bit-identical to the naive route.
    """

    database: Database
    annotate: bool = True
    batch_size: int = 65536
    pushdown: bool = True
    summary_fastpath: bool = True
    _scanned_rows: int = field(default=0, init=False)
    _pushdowns: dict[int, ScanPushdown] = field(default_factory=dict, init=False)

    @property
    def schema(self) -> Schema:
        return self.database.schema

    # -- public API ------------------------------------------------------

    def execute(self, plan: PlanNode) -> ExecutionResult:
        """Execute a plan, optionally annotating node cardinalities in place."""
        self._scanned_rows = 0
        self._pushdowns = compute_pushdowns(plan, self.schema) if self.pushdown else {}
        block = self._execute_node(plan)
        return ExecutionResult(
            columns=block.columns,
            row_count=block.row_count,
            scanned_rows=self._scanned_rows,
        )

    # -- node dispatch ---------------------------------------------------

    def _execute_node(self, node: PlanNode) -> _Block:
        if isinstance(node, ScanNode):
            block = self._execute_scan(node)
        elif isinstance(node, FilterNode):
            block = self._execute_filter(node)
        elif isinstance(node, JoinNode):
            block = self._execute_join(node)
        elif isinstance(node, ProjectNode):
            block = self._execute_project(node)
        elif isinstance(node, AggregateNode):
            block = self._execute_aggregate(node)
        else:
            raise ExecutorError(f"unsupported plan node {type(node).__name__}")
        if self.annotate:
            node.cardinality = block.row_count
        return block

    # -- scans -----------------------------------------------------------

    def _provider_columns(
        self, provider: RelationProvider, table: str, column_names: list[str]
    ) -> dict[str, np.ndarray]:
        """Fetch the requested columns from a provider, however it is backed."""
        if isinstance(provider, MaterializedRelation):
            return {name: provider.column(name) for name in column_names}
        fetch = getattr(provider, "fetch_columns", None)
        if callable(fetch):
            fetched: Mapping[str, np.ndarray] = fetch(column_names, batch_size=self.batch_size)
            return {name: np.asarray(fetched[name]) for name in column_names}
        # Last resort: row-at-a-time generation through the provider protocol.
        order = provider.column_names
        indices = [order.index(name) for name in column_names]
        rows = [provider.row(i) for i in range(provider.row_count)]
        return {
            name: np.asarray([row[idx] for row in rows], dtype=np.float64)
            for name, idx in zip(column_names, indices)
        }

    @staticmethod
    def _ordered_columns(selection: tuple[str, ...] | None, table: Table) -> list[str]:
        """A pushdown column selection in schema order (``None`` = all)."""
        if selection is None:
            return table.column_names
        wanted = set(selection)
        return [name for name in table.column_names if name in wanted]

    def _scan_column_names(self, node: ScanNode, table: Table) -> list[str]:
        push = self._pushdowns.get(node.node_id)
        return self._ordered_columns(
            None if push is None else push.generate_columns, table
        )

    def _execute_scan(self, node: ScanNode) -> _Block:
        table = self.schema.table(node.table)
        provider = self.database.provider(node.table)
        names = self._scan_column_names(node, table)
        columns = self._provider_columns(provider, node.table, names) if names else {}
        qualified = {f"{node.table}.{name}": values for name, values in columns.items()}
        self._scanned_rows += provider.row_count
        return _Block(columns=qualified, row_count=provider.row_count)

    # -- filters ----------------------------------------------------------

    def _predicate_box(self, predicate: Predicate, table: Table) -> BoxCondition | None:
        """Convert a predicate to an *exactly equivalent* box, else ``None``.

        Box conditions on continuous columns approximate ``=``, ``!=``,
        ``<=`` and ``>`` with epsilon-widened half-open intervals; masking or
        summary-counting with such a box could diverge from the naive route
        on values inside the epsilon window.  Those predicates are therefore
        rejected here (the streaming scan then masks with the original
        predicate, and the fast path does not apply), keeping every route
        bit-identical.  Discrete columns hold integral values, for which the
        conversion is always exact; ``<``/``>=`` are exact on any domain.
        """
        if not _box_semantics_exact(predicate, table):
            return None
        discrete = {column.name: column.dtype.is_discrete for column in table.columns}
        try:
            return predicate.to_box(discrete)
        except ValueError:
            return None

    def _empty_column(self, table: Table, name: str) -> np.ndarray:
        return np.empty(0, dtype=table.column(name).dtype.numpy_dtype)

    def _execute_filtered_scan(self, scan: ScanNode, node: FilterNode) -> _Block:
        """Fused filter+scan: stream batches, keep only matching rows.

        The scan is annotated with the full relation cardinality and the
        returned block carries the filtered rows, so AQP annotations are
        identical to the unfused route while the dataless relation is never
        materialised in full.
        """
        table = self.schema.table(scan.table)
        provider = self.database.provider(scan.table)
        predicate = node.predicate
        push = self._pushdowns.get(scan.node_id)
        output = self._ordered_columns(
            None if push is None else push.output_columns, table
        )

        if not predicate.columns():
            # Column-free predicate (TruePredicate, empty conjunction/
            # disjunction from a deserialised AQP): its verdict is constant,
            # so decide it once instead of masking per batch — a length-0
            # column dict would otherwise produce a length-0 mask.
            verdict = bool(predicate.evaluate({"_": np.zeros(1, dtype=np.float64)})[0])
            if self.annotate:
                scan.cardinality = provider.row_count
            if not verdict:
                return _Block(
                    columns={
                        f"{scan.table}.{name}": self._empty_column(table, name)
                        for name in output
                    },
                    row_count=0,
                )
            local = self._provider_columns(provider, scan.table, output) if output else {}
            self._scanned_rows += provider.row_count
            return _Block(
                columns={f"{scan.table}.{name}": values for name, values in local.items()},
                row_count=provider.row_count,
            )

        if callable(getattr(provider, "iter_filtered_blocks", None)):
            box = self._predicate_box(predicate, table)
            pieces: dict[str, list[np.ndarray]] = {name: [] for name in output}
            matched = 0
            for _start, generated, batch_matched, block in provider.iter_filtered_blocks(
                predicate=predicate, box=box, columns=output, batch_size=self.batch_size
            ):
                self._scanned_rows += generated
                if batch_matched == 0:
                    continue
                matched += batch_matched
                for name in output:
                    pieces[name].append(block[name])
            columns = {
                f"{scan.table}.{name}": (
                    np.concatenate(chunks) if chunks else self._empty_column(table, name)
                )
                for name, chunks in pieces.items()
            }
        else:
            needed = columns_with_dependencies(output, predicate.columns())
            local = self._provider_columns(provider, scan.table, needed)
            mask = predicate.evaluate(local)
            matched = int(mask.sum())
            columns = {f"{scan.table}.{name}": local[name][mask] for name in output}
            self._scanned_rows += provider.row_count

        if self.annotate:
            scan.cardinality = provider.row_count
        return _Block(columns=columns, row_count=matched)

    def _execute_filter(self, node: FilterNode) -> _Block:
        if self.pushdown and isinstance(node.child, ScanNode):
            # Fuse exactly when the planner's pushdown pass marked this
            # filter as pushable into the scan — one source of truth for the
            # fusion decision and the column bookkeeping it implies.
            push = self._pushdowns.get(node.child.node_id)
            if push is not None and push.predicate is node.predicate:
                return self._execute_filtered_scan(node.child, node)
        child = self._execute_node(node.child)
        prefix = node.table + "."
        local = {
            name[len(prefix):]: values
            for name, values in child.columns.items()
            if name.startswith(prefix)
        }
        if not local:
            raise ExecutorError(
                f"filter on table {node.table!r} but its columns are absent from the input"
            )
        mask = node.predicate.evaluate(local)
        columns = {name: values[mask] for name, values in child.columns.items()}
        return _Block(columns=columns, row_count=int(mask.sum()))

    # -- joins -------------------------------------------------------------

    def _execute_join(self, node: JoinNode) -> _Block:
        left = self._execute_node(node.left)
        right = self._execute_node(node.right)
        condition = node.condition

        left_key_name = f"{condition.left_table}.{condition.left_column}"
        right_key_name = f"{condition.right_table}.{condition.right_column}"
        if left_key_name in left.columns and right_key_name in right.columns:
            left_keys, right_keys = left.columns[left_key_name], right.columns[right_key_name]
        elif right_key_name in left.columns and left_key_name in right.columns:
            left_keys, right_keys = left.columns[right_key_name], right.columns[left_key_name]
        else:
            raise ExecutorError(f"join keys {left_key_name}/{right_key_name} not available")

        left_indices, right_indices = _hash_join_indices(left_keys, right_keys)
        columns: dict[str, np.ndarray] = {}
        for name, values in left.columns.items():
            columns[name] = values[left_indices]
        for name, values in right.columns.items():
            columns[name] = values[right_indices]
        return _Block(columns=columns, row_count=int(len(left_indices)))

    # -- projection / aggregation -----------------------------------------

    def _resolve_output_column(self, block: _Block, name: str) -> str:
        if name in block.columns:
            return name
        matches = [key for key in block.columns if key.endswith("." + name)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ExecutorError(f"projection column {name!r} not found")
        raise ExecutorError(f"projection column {name!r} is ambiguous: {matches}")

    def _execute_project(self, node: ProjectNode) -> _Block:
        child = self._execute_node(node.child)
        columns: dict[str, np.ndarray] = {}
        for name in node.columns:
            resolved = self._resolve_output_column(child, name)
            columns[resolved] = child.columns[resolved]
        return _Block(columns=columns, row_count=child.row_count)

    def _execute_aggregate(self, node: AggregateNode) -> _Block:
        if node.function != "count":
            raise ExecutorError(f"unsupported aggregate {node.function!r}")
        if self.summary_fastpath:
            fast = self._summary_count(node.child)
            if fast is not None:
                return _Block(
                    columns={"count": np.asarray([fast], dtype=np.int64)},
                    row_count=1,
                )
        child = self._execute_node(node.child)
        return _Block(
            columns={"count": np.asarray([child.row_count], dtype=np.int64)},
            row_count=1,
        )

    def _summary_count(self, child: PlanNode) -> int | None:
        """Answer a COUNT aggregate straight from a relation summary.

        Applies when the aggregate input is a (possibly filtered) scan of a
        summary-backed dataless relation and the filter normalises to a box
        condition the summary can count *exactly* (see
        :meth:`~repro.core.summary.RelationSummary.count_matching`); returns
        ``None`` otherwise so the caller falls back to streaming execution.
        Annotates the scan/filter nodes with the same cardinalities streaming
        would produce, without generating a single tuple.
        """
        filter_node: FilterNode | None = None
        if isinstance(child, ScanNode):
            scan = child
        elif (
            isinstance(child, FilterNode)
            and isinstance(child.child, ScanNode)
            and child.child.table == child.table
        ):
            filter_node, scan = child, child.child
        else:
            return None

        provider = self.database.provider(scan.table)
        source = getattr(provider, "source", None)
        summary = getattr(source, "summary", None)
        if summary is None or not callable(getattr(summary, "count_matching", None)):
            return None

        table = self.schema.table(scan.table)
        if filter_node is None:
            box = BoxCondition({})
        else:
            box = self._predicate_box(filter_node.predicate, table)
            if box is None:
                return None
        count = summary.count_matching(box, pk_column=table.primary_key)
        if count is None:
            return None
        if self.annotate:
            scan.cardinality = provider.row_count
            if filter_node is not None:
                filter_node.cardinality = int(count)
        return int(count)


def _box_semantics_exact(predicate: Predicate, table: Table) -> bool:
    """Whether ``predicate.to_box()`` is exactly equivalent to the predicate.

    Exactness composes: intersections/unions/complements of exact per-column
    interval sets stay exact, so only the leaves matter.  A comparison on a
    discrete column is always exact (the internal domain is integral); on a
    continuous column only ``<`` and ``>=`` avoid the epsilon approximation.
    """
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, Comparison):
        if not table.has_column(predicate.column):
            # Unknown columns must surface as errors on every route, never be
            # silently counted against a summary default value.
            return False
        if predicate.op in ("<", ">="):
            return True
        # =, !=, <= and > round the bound to the next representable point;
        # on a discrete column that is exact only for integral constants
        # (qty = 2.5 matches nothing, but its box [2.5, 3.5) matches 3).
        return (
            table.column(predicate.column).dtype.is_discrete
            and float(predicate.value).is_integer()
        )
    if isinstance(predicate, InList):
        return (
            table.has_column(predicate.column)
            and table.column(predicate.column).dtype.is_discrete
            and all(float(value).is_integer() for value in predicate.values)
        )
    if isinstance(predicate, And):
        return all(_box_semantics_exact(child, table) for child in predicate.children)
    if isinstance(predicate, Or):
        # An empty Or evaluates to all-False but its box is unconstrained.
        return bool(predicate.children) and all(
            _box_semantics_exact(child, table) for child in predicate.children
        )
    if isinstance(predicate, Not):
        return _box_semantics_exact(predicate.child, table)
    return False


def _hash_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return index pairs (left_idx, right_idx) of matching key values.

    Implemented as a fully vectorised sort-merge join (duplicates on either
    side are handled), which keeps the client-site AQP extraction fast even
    for multi-hundred-thousand-row fact tables.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    # Sort the build (right) side once, then locate each probe key's run.
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    run_start = np.searchsorted(sorted_right, left_keys, side="left")
    run_end = np.searchsorted(sorted_right, left_keys, side="right")
    counts = run_end - run_start
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    left_indices = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    cumulative = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cumulative - counts, counts)
    right_positions = np.repeat(run_start, counts) + offsets
    right_indices = order[right_positions]
    return left_indices, right_indices
