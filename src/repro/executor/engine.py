"""Vectorised execution engine for SPJ plans.

The engine plays two roles in the reproduction of HYDRA:

* at the **client site** it executes the workload over the materialised
  customer database and records each operator's output cardinality — this is
  how Annotated Query Plans are produced;
* at the **vendor site** it executes the very same plans over the regenerated
  (dataless or materialised) database so that volumetric similarity can be
  verified, and it is the harness inside which the ``datagen`` dynamic
  regeneration scan operator runs.

Execution is column-vectorised: every operator consumes and produces a block
of NumPy column arrays keyed by qualified ``table.column`` names.  Relations
that are not materialised are pulled through their provider's bulk interface
(`fetch_columns`) when available, falling back to row-at-a-time generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..catalog.schema import Schema
from ..plans.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from ..storage.database import Database, MaterializedRelation, RelationProvider

__all__ = ["ExecutionResult", "ExecutionEngine", "ExecutorError"]


class ExecutorError(RuntimeError):
    """Raised when a plan cannot be executed against the given database."""


@dataclass
class ExecutionResult:
    """Output block of a plan execution."""

    columns: dict[str, np.ndarray]
    row_count: int
    scanned_rows: int = 0

    def column(self, name: str) -> np.ndarray:
        if name in self.columns:
            return self.columns[name]
        matches = [key for key in self.columns if key.endswith("." + name)]
        if len(matches) == 1:
            return self.columns[matches[0]]
        raise KeyError(f"result has no column {name!r}")

    def rows(self, limit: int | None = None) -> list[tuple[Any, ...]]:
        count = self.row_count if limit is None else min(limit, self.row_count)
        names = list(self.columns)
        return [tuple(self.columns[name][i] for name in names) for i in range(count)]


@dataclass
class _Block:
    """Internal intermediate result: qualified column arrays + row count."""

    columns: dict[str, np.ndarray]
    row_count: int


@dataclass
class ExecutionEngine:
    """Executes plan trees over a :class:`Database`."""

    database: Database
    annotate: bool = True
    batch_size: int = 65536
    _scanned_rows: int = field(default=0, init=False)

    @property
    def schema(self) -> Schema:
        return self.database.schema

    # -- public API ------------------------------------------------------

    def execute(self, plan: PlanNode) -> ExecutionResult:
        """Execute a plan, optionally annotating node cardinalities in place."""
        self._scanned_rows = 0
        block = self._execute_node(plan)
        return ExecutionResult(
            columns=block.columns,
            row_count=block.row_count,
            scanned_rows=self._scanned_rows,
        )

    # -- node dispatch ---------------------------------------------------

    def _execute_node(self, node: PlanNode) -> _Block:
        if isinstance(node, ScanNode):
            block = self._execute_scan(node)
        elif isinstance(node, FilterNode):
            block = self._execute_filter(node)
        elif isinstance(node, JoinNode):
            block = self._execute_join(node)
        elif isinstance(node, ProjectNode):
            block = self._execute_project(node)
        elif isinstance(node, AggregateNode):
            block = self._execute_aggregate(node)
        else:
            raise ExecutorError(f"unsupported plan node {type(node).__name__}")
        if self.annotate:
            node.cardinality = block.row_count
        return block

    # -- scans -----------------------------------------------------------

    def _provider_columns(
        self, provider: RelationProvider, table: str, column_names: list[str]
    ) -> dict[str, np.ndarray]:
        """Fetch the requested columns from a provider, however it is backed."""
        if isinstance(provider, MaterializedRelation):
            return {name: provider.column(name) for name in column_names}
        fetch = getattr(provider, "fetch_columns", None)
        if callable(fetch):
            fetched: Mapping[str, np.ndarray] = fetch(column_names, batch_size=self.batch_size)
            return {name: np.asarray(fetched[name]) for name in column_names}
        # Last resort: row-at-a-time generation through the provider protocol.
        order = provider.column_names
        indices = [order.index(name) for name in column_names]
        rows = [provider.row(i) for i in range(provider.row_count)]
        return {
            name: np.asarray([row[idx] for row in rows], dtype=np.float64)
            for name, idx in zip(column_names, indices)
        }

    def _execute_scan(self, node: ScanNode) -> _Block:
        table = self.schema.table(node.table)
        provider = self.database.provider(node.table)
        columns = self._provider_columns(provider, node.table, table.column_names)
        qualified = {f"{node.table}.{name}": values for name, values in columns.items()}
        self._scanned_rows += provider.row_count
        return _Block(columns=qualified, row_count=provider.row_count)

    # -- filters ----------------------------------------------------------

    def _execute_filter(self, node: FilterNode) -> _Block:
        child = self._execute_node(node.child)
        prefix = node.table + "."
        local = {
            name[len(prefix):]: values
            for name, values in child.columns.items()
            if name.startswith(prefix)
        }
        if not local:
            raise ExecutorError(
                f"filter on table {node.table!r} but its columns are absent from the input"
            )
        mask = node.predicate.evaluate(local)
        columns = {name: values[mask] for name, values in child.columns.items()}
        return _Block(columns=columns, row_count=int(mask.sum()))

    # -- joins -------------------------------------------------------------

    def _execute_join(self, node: JoinNode) -> _Block:
        left = self._execute_node(node.left)
        right = self._execute_node(node.right)
        condition = node.condition

        left_key_name = f"{condition.left_table}.{condition.left_column}"
        right_key_name = f"{condition.right_table}.{condition.right_column}"
        if left_key_name in left.columns and right_key_name in right.columns:
            left_keys, right_keys = left.columns[left_key_name], right.columns[right_key_name]
        elif right_key_name in left.columns and left_key_name in right.columns:
            left_keys, right_keys = left.columns[right_key_name], right.columns[left_key_name]
        else:
            raise ExecutorError(f"join keys {left_key_name}/{right_key_name} not available")

        left_indices, right_indices = _hash_join_indices(left_keys, right_keys)
        columns: dict[str, np.ndarray] = {}
        for name, values in left.columns.items():
            columns[name] = values[left_indices]
        for name, values in right.columns.items():
            columns[name] = values[right_indices]
        return _Block(columns=columns, row_count=int(len(left_indices)))

    # -- projection / aggregation -----------------------------------------

    def _resolve_output_column(self, block: _Block, name: str) -> str:
        if name in block.columns:
            return name
        matches = [key for key in block.columns if key.endswith("." + name)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ExecutorError(f"projection column {name!r} not found")
        raise ExecutorError(f"projection column {name!r} is ambiguous: {matches}")

    def _execute_project(self, node: ProjectNode) -> _Block:
        child = self._execute_node(node.child)
        columns: dict[str, np.ndarray] = {}
        for name in node.columns:
            resolved = self._resolve_output_column(child, name)
            columns[resolved] = child.columns[resolved]
        return _Block(columns=columns, row_count=child.row_count)

    def _execute_aggregate(self, node: AggregateNode) -> _Block:
        child = self._execute_node(node.child)
        if node.function != "count":
            raise ExecutorError(f"unsupported aggregate {node.function!r}")
        return _Block(
            columns={"count": np.asarray([child.row_count], dtype=np.int64)},
            row_count=1,
        )


def _hash_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return index pairs (left_idx, right_idx) of matching key values.

    Implemented as a fully vectorised sort-merge join (duplicates on either
    side are handled), which keeps the client-site AQP extraction fast even
    for multi-hundred-thousand-row fact tables.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    # Sort the build (right) side once, then locate each probe key's run.
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    run_start = np.searchsorted(sorted_right, left_keys, side="left")
    run_end = np.searchsorted(sorted_right, left_keys, side="right")
    counts = run_end - run_start
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    left_indices = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    cumulative = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cumulative - counts, counts)
    right_positions = np.repeat(run_start, counts) + offsets
    right_indices = order[right_positions]
    return left_indices, right_indices
