"""Vectorised execution engine for SPJ plans.

The engine plays two roles in the reproduction of HYDRA:

* at the **client site** it executes the workload over the materialised
  customer database and records each operator's output cardinality — this is
  how Annotated Query Plans are produced;
* at the **vendor site** it executes the very same plans over the regenerated
  (dataless or materialised) database so that volumetric similarity can be
  verified, and it is the harness inside which the ``datagen`` dynamic
  regeneration scan operator runs.

Execution is column-vectorised: every operator consumes and produces a block
of NumPy column arrays keyed by qualified ``table.column`` names.  Relations
that are not materialised are pulled through their provider's bulk interface
(`fetch_columns`) when available, falling back to row-at-a-time generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, TYPE_CHECKING, cast

import numpy as np
from numpy.typing import NDArray

from ..catalog.schema import Schema, Table
from ..plans.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    leaf_scan,
)
from ..plans.planner import (
    ScanPushdown,
    compute_pushdowns,
    compute_semijoin_pushdowns,
    exact_predicate_box,
    fk_join_edge,
)
from ..sql.predicates import (
    BoxCondition,
    Interval,
    IntervalSet,
    Predicate,
    columns_with_dependencies,
)
from ..sql.query import DisjunctiveJoinCondition
from ..storage.database import Database, MaterializedRelation, RelationProvider
from ..telemetry.session import add_counter, is_active, span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.summary import RelationSummary

__all__ = ["ExecutionResult", "ExecutionEngine", "ExecutorError", "RouteEvent"]


class ExecutorError(RuntimeError):
    """Raised when a plan cannot be executed against the given database."""


@dataclass(frozen=True)
class RouteEvent:
    """One routing decision made during a plan execution.

    ``kind`` is the decision point (``"aggregate"`` for the summary
    fast path vs streaming, ``"join"`` for streaming vs materialising
    joins); ``route`` is the route taken; ``reason`` explains *why* a fast
    path was not taken (``None`` when it was).  The same names feed the
    ``engine.route.<kind>.<route>`` and ``engine.fallback.<kind>.<reason>``
    telemetry counters (see docs/OBSERVABILITY.md).
    """

    kind: str
    route: str
    reason: str | None = None


@dataclass
class ExecutionResult:
    """Output block of a plan execution.

    ``route_events`` is the ordered list of routing decisions the engine
    made; :attr:`aggregate_route` and :attr:`fallback_reasons` are thin
    views over it.  ``aggregate_route`` records how a top-level aggregate
    was answered: ``"summary"`` when it was served from the relation
    summaries without generating tuples, ``"streaming"`` when the child
    plan was executed, and ``None`` when the plan has no aggregate root.
    """

    columns: dict[str, NDArray[Any]]
    row_count: int
    scanned_rows: int = 0
    route_events: list[RouteEvent] = field(default_factory=list)

    @property
    def aggregate_route(self) -> str | None:
        """How the top-level aggregate was answered (view over route events)."""
        for event in reversed(self.route_events):
            if event.kind == "aggregate":
                return event.route
        return None

    @property
    def fallback_reasons(self) -> list[str]:
        """Why fast paths were not taken, in decision order."""
        return [event.reason for event in self.route_events if event.reason is not None]

    def column(self, name: str) -> NDArray[Any]:
        if name in self.columns:
            return self.columns[name]
        matches = [key for key in self.columns if key.endswith("." + name)]
        if len(matches) == 1:
            return self.columns[matches[0]]
        if matches:
            raise KeyError(
                f"column {name!r} is ambiguous in result, "
                f"candidates: {sorted(matches)}"
            )
        raise KeyError(f"result has no column {name!r}")

    def rows(self, limit: int | None = None) -> list[tuple[Any, ...]]:
        count = self.row_count if limit is None else min(limit, self.row_count)
        names = list(self.columns)
        return [tuple(self.columns[name][i] for name in names) for i in range(count)]


@dataclass
class _Block:
    """Internal intermediate result: qualified column arrays + row count."""

    columns: dict[str, NDArray[Any]]
    row_count: int


@dataclass
class ExecutionEngine:
    """Executes plan trees over a :class:`Database`.

    With ``pushdown`` enabled (the default) every scan generates only the
    columns referenced upstream, and a filter sitting directly on a scan is
    fused into it: dataless relations stream batch-by-batch through the
    predicate so peak memory is bounded by the batch size plus the matching
    rows, never O(rows × columns) of the whole relation.  With
    ``summary_fastpath`` enabled, ``COUNT`` aggregates over a single
    summary-backed relation — or over a left-deep tree of key/foreign-key
    joins of summary-backed relations (single joins, ``A→B→C`` chains,
    star fan-outs) — and ``SUM``/``AVG`` aggregates over a single
    summary-backed relation are answered directly from the relation
    summaries (count × interval arithmetic, O(#summary rows)) whenever the
    pushed filters are expressible as box conditions and the summaries can
    answer them exactly; otherwise execution falls back to the streaming
    scan.  :attr:`ExecutionResult.aggregate_route` reports which of the two
    served a given aggregate.  With ``streaming_join`` enabled (requires ``pushdown``), joins
    with a dataless leaf input run build/probe: the smaller side (by summary
    cardinality) is materialised as the build table and the other side is
    streamed through it batch-by-batch, with semi-join FK pushdown skipping
    probe summary segments that cannot join.  All knobs leave every AQP
    annotation and every output block bit-identical to the naive route.

    Parallel regeneration is transparent to the engine: when a relation is
    attached as a :class:`~repro.executor.datagen.ParallelDataGenRelation`,
    every streaming consumer here (fused filter+scan, streaming-join probe,
    ``fetch_columns``) receives the ordered merge of the worker shards
    through the same ``iter_filtered_blocks``/``fetch_columns`` interface —
    filtered block streams are yield-for-yield identical to serial
    generation and fetched columns are value-identical, so results, row
    order, ``scanned_rows`` and annotations do not depend on the worker
    count.
    """

    database: Database
    annotate: bool = True
    batch_size: int = 65536
    pushdown: bool = True
    summary_fastpath: bool = True
    streaming_join: bool = True
    _scanned_rows: int = field(default=0, init=False)
    _route_events: list[RouteEvent] = field(default_factory=list, init=False)
    _fallback_reason: "str | None" = field(default=None, init=False)
    _pushdowns: dict[int, ScanPushdown] = field(default_factory=dict, init=False)
    _semijoins: dict[int, BoxCondition] = field(default_factory=dict, init=False)

    @property
    def schema(self) -> Schema:
        return self.database.schema

    # -- public API ------------------------------------------------------

    def execute(self, plan: PlanNode) -> ExecutionResult:
        """Execute a plan, optionally annotating node cardinalities in place."""
        self._scanned_rows = 0
        self._route_events = []
        self._fallback_reason = None
        self._pushdowns = compute_pushdowns(plan, self.schema) if self.pushdown else {}
        self._semijoins = (
            compute_semijoin_pushdowns(plan, self.schema, self._plan_summaries(plan))
            if self.pushdown and self.streaming_join
            else {}
        )
        with span("engine.execute") as execute_span:
            block = self._execute_node(plan)
            if is_active() and self._route_events:
                execute_span.annotate(
                    routes=[f"{event.kind}:{event.route}" for event in self._route_events],
                    fallback_reasons=[
                        event.reason for event in self._route_events if event.reason
                    ],
                )
        return ExecutionResult(
            columns=block.columns,
            row_count=block.row_count,
            scanned_rows=self._scanned_rows,
            route_events=list(self._route_events),
        )

    # -- route accounting --------------------------------------------------

    def _record_route(self, kind: str, route: str, reason: str | None = None) -> None:
        """Record one routing decision (result view + telemetry counters)."""
        self._route_events.append(RouteEvent(kind=kind, route=route, reason=reason))
        add_counter(f"engine.route.{kind}.{route}")
        if reason is not None:
            add_counter(f"engine.fallback.{kind}.{reason}")

    def _fallback(self, reason: str) -> None:
        """Note why the current fast-path attempt is about to bail out.

        The pending reason is attached to the route event recorded by the
        caller that initiated the attempt (``_execute_join`` /
        ``_execute_count`` / ``_execute_sum_avg``).
        """
        self._fallback_reason = reason

    def _take_fallback_reason(self) -> str | None:
        pending = self._fallback_reason
        self._fallback_reason = None
        return pending

    # -- node dispatch ---------------------------------------------------

    def _execute_node(self, node: PlanNode) -> _Block:
        if isinstance(node, ScanNode):
            block = self._execute_scan(node)
        elif isinstance(node, FilterNode):
            block = self._execute_filter(node)
        elif isinstance(node, JoinNode):
            block = self._execute_join(node)
        elif isinstance(node, ProjectNode):
            block = self._execute_project(node)
        elif isinstance(node, AggregateNode):
            block = self._execute_aggregate(node)
        else:
            raise ExecutorError(f"unsupported plan node {type(node).__name__}")
        if self.annotate:
            node.cardinality = block.row_count
        return block

    # -- scans -----------------------------------------------------------

    def _provider_columns(
        self, provider: RelationProvider, table: str, column_names: list[str]
    ) -> dict[str, NDArray[Any]]:
        """Fetch the requested columns from a provider, however it is backed."""
        if isinstance(provider, MaterializedRelation):
            return {name: provider.column(name) for name in column_names}
        fetch = getattr(provider, "fetch_columns", None)
        if callable(fetch):
            fetched: Mapping[str, NDArray[Any]] = fetch(column_names, batch_size=self.batch_size)
            return {name: np.asarray(fetched[name]) for name in column_names}
        # Last resort: row-at-a-time generation through the provider protocol.
        # Arrays take the schema column dtypes: collapsing everything to
        # float64 here would poison join/key dtypes downstream.
        table_obj = self.schema.table(table)
        order = provider.column_names
        indices = [order.index(name) for name in column_names]
        rows = [provider.row(i) for i in range(provider.row_count)]
        return {
            name: np.asarray(
                [row[idx] for row in rows],
                dtype=table_obj.column(name).dtype.numpy_dtype,
            )
            for name, idx in zip(column_names, indices)
        }

    def _relation_summary(self, table_name: str) -> "RelationSummary | None":
        """The relation summary backing a dataless provider, if any."""
        try:
            provider = self.database.provider(table_name)
        except KeyError:
            return None
        source = getattr(provider, "source", None)
        summary = getattr(source, "summary", None)
        if summary is None or not callable(getattr(summary, "count_matching", None)):
            return None
        return cast("RelationSummary", summary)

    def _plan_summaries(self, plan: PlanNode) -> dict[str, Any]:
        """Summaries of every summary-backed relation scanned by the plan."""
        summaries: dict[str, Any] = {}
        for node in plan.iter_nodes():
            if isinstance(node, ScanNode) and node.table not in summaries:
                summary = self._relation_summary(node.table)
                if summary is not None and callable(
                    getattr(summary, "matching_pk_intervals", None)
                ):
                    summaries[node.table] = summary
        return summaries

    @staticmethod
    def _ordered_columns(selection: tuple[str, ...] | None, table: Table) -> list[str]:
        """A pushdown column selection in schema order (``None`` = all)."""
        if selection is None:
            return table.column_names
        wanted = set(selection)
        return [name for name in table.column_names if name in wanted]

    def _scan_column_names(self, node: ScanNode, table: Table) -> list[str]:
        push = self._pushdowns.get(node.node_id)
        return self._ordered_columns(
            None if push is None else push.generate_columns, table
        )

    def _execute_scan(self, node: ScanNode) -> _Block:
        table = self.schema.table(node.table)
        provider = self.database.provider(node.table)
        names = self._scan_column_names(node, table)
        columns = self._provider_columns(provider, node.table, names) if names else {}
        qualified = {f"{node.table}.{name}": values for name, values in columns.items()}
        self._scanned_rows += provider.row_count
        return _Block(columns=qualified, row_count=provider.row_count)

    # -- filters ----------------------------------------------------------

    def _predicate_box(self, predicate: Predicate, table: Table) -> BoxCondition | None:
        """Convert a predicate to an *exactly equivalent* box, else ``None``.

        Delegates to :func:`~repro.plans.planner.exact_predicate_box`: when
        the box would be an epsilon-approximation the streaming scan masks
        with the original predicate instead and the fast paths do not apply,
        keeping every route bit-identical.
        """
        return exact_predicate_box(predicate, table)

    def _empty_column(self, table: Table, name: str) -> NDArray[Any]:
        return np.empty(0, dtype=table.column(name).dtype.numpy_dtype)

    def _execute_filtered_scan(self, scan: ScanNode, node: FilterNode) -> _Block:
        """Fused filter+scan: stream batches, keep only matching rows.

        The scan is annotated with the full relation cardinality and the
        returned block carries the filtered rows, so AQP annotations are
        identical to the unfused route while the dataless relation is never
        materialised in full.
        """
        table = self.schema.table(scan.table)
        provider = self.database.provider(scan.table)
        predicate = node.predicate
        push = self._pushdowns.get(scan.node_id)
        output = self._ordered_columns(
            None if push is None else push.output_columns, table
        )

        if not predicate.columns():
            # Column-free predicate (TruePredicate, empty conjunction/
            # disjunction from a deserialised AQP): its verdict is constant,
            # so decide it once instead of masking per batch — a length-0
            # column dict would otherwise produce a length-0 mask.
            verdict = bool(predicate.evaluate({"_": np.zeros(1, dtype=np.float64)})[0])
            if self.annotate:
                scan.cardinality = provider.row_count
            if not verdict:
                return _Block(
                    columns={
                        f"{scan.table}.{name}": self._empty_column(table, name)
                        for name in output
                    },
                    row_count=0,
                )
            local = self._provider_columns(provider, scan.table, output) if output else {}
            self._scanned_rows += provider.row_count
            return _Block(
                columns={f"{scan.table}.{name}": values for name, values in local.items()},
                row_count=provider.row_count,
            )

        if callable(getattr(provider, "iter_filtered_blocks", None)):
            box = self._predicate_box(predicate, table)
            pieces: dict[str, list[NDArray[Any]]] = {name: [] for name in output}
            matched = 0
            for _start, generated, batch_matched, block in provider.iter_filtered_blocks(
                predicate=predicate, box=box, columns=output, batch_size=self.batch_size
            ):
                self._scanned_rows += generated
                if batch_matched == 0:
                    continue
                matched += batch_matched
                for name in output:
                    pieces[name].append(block[name])
            columns = {
                f"{scan.table}.{name}": (
                    np.concatenate(chunks) if chunks else self._empty_column(table, name)
                )
                for name, chunks in pieces.items()
            }
        else:
            needed = columns_with_dependencies(output, predicate.columns())
            local = self._provider_columns(provider, scan.table, needed)
            mask = predicate.evaluate(local)
            matched = int(mask.sum())
            columns = {f"{scan.table}.{name}": local[name][mask] for name in output}
            self._scanned_rows += provider.row_count

        if self.annotate:
            scan.cardinality = provider.row_count
        return _Block(columns=columns, row_count=matched)

    def _execute_filter(self, node: FilterNode) -> _Block:
        if self.pushdown and isinstance(node.child, ScanNode):
            # Fuse exactly when the planner's pushdown pass marked this
            # filter as pushable into the scan — one source of truth for the
            # fusion decision and the column bookkeeping it implies.
            push = self._pushdowns.get(node.child.node_id)
            if push is not None and push.predicate is node.predicate:
                return self._execute_filtered_scan(node.child, node)
        child = self._execute_node(node.child)
        prefix = node.table + "."
        local = {
            name[len(prefix):]: values
            for name, values in child.columns.items()
            if name.startswith(prefix)
        }
        if not local:
            raise ExecutorError(
                f"filter on table {node.table!r} but its columns are absent from the input"
            )
        mask = node.predicate.evaluate(local)
        columns = {name: values[mask] for name, values in child.columns.items()}
        return _Block(columns=columns, row_count=int(mask.sum()))

    # -- joins -------------------------------------------------------------

    def _execute_join(self, node: JoinNode) -> _Block:
        if self.pushdown and self.streaming_join:
            self._fallback_reason = None
            block = self._execute_streaming_join(node)
            if block is not None:
                self._record_route("join", "streaming")
                return block
            self._record_route(
                "join", "materializing", self._take_fallback_reason() or "not-applicable"
            )
        left = self._execute_node(node.left)
        right = self._execute_node(node.right)
        condition = node.condition

        if isinstance(condition, DisjunctiveJoinCondition):
            left_indices, right_indices = self._disjunctive_join_indices(
                left, right, condition
            )
        else:
            left_keys, right_keys = self._join_key_arrays(left, right, condition)
            left_indices, right_indices = _hash_join_indices(left_keys, right_keys)
        columns: dict[str, NDArray[Any]] = {}
        for name, values in left.columns.items():
            columns[name] = values[left_indices]
        for name, values in right.columns.items():
            columns[name] = values[right_indices]
        return _Block(columns=columns, row_count=int(len(left_indices)))

    @staticmethod
    def _join_key_arrays(
        left: _Block, right: _Block, condition: Any
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        """Resolve one equi-join's key arrays out of the two input blocks."""
        left_key_name = f"{condition.left_table}.{condition.left_column}"
        right_key_name = f"{condition.right_table}.{condition.right_column}"
        if left_key_name in left.columns and right_key_name in right.columns:
            return left.columns[left_key_name], right.columns[right_key_name]
        if right_key_name in left.columns and left_key_name in right.columns:
            return left.columns[right_key_name], right.columns[left_key_name]
        raise ExecutorError(f"join keys {left_key_name}/{right_key_name} not available")

    def _disjunctive_join_indices(
        self, left: _Block, right: _Block, condition: DisjunctiveJoinCondition
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        """Index pairs matching *any* alternative of a disjunctive join.

        Each alternative is evaluated as an ordinary vectorised equi-join;
        the per-alternative index pairs are unioned with duplicates removed
        (a row pair satisfying two alternatives appears once) and ordered
        exactly like a plain join's output: ascending by left row, each left
        row's partners ascending by right row.
        """
        empty = np.empty(0, dtype=np.int64)
        if left.row_count == 0 or right.row_count == 0:
            return empty, empty
        encoded_sets: list[NDArray[Any]] = []
        stride = np.int64(right.row_count)
        for alternative in condition.alternatives:
            left_keys, right_keys = self._join_key_arrays(left, right, alternative)
            left_idx, right_idx = _hash_join_indices(left_keys, right_keys)
            if len(left_idx):
                encoded_sets.append(left_idx * stride + right_idx)
        if not encoded_sets:
            return empty, empty
        encoded = np.unique(np.concatenate(encoded_sets))
        return encoded // stride, encoded % stride

    def _streamable_leaf(self, child: PlanNode) -> tuple[ScanNode, FilterNode | None] | None:
        """The child's leaf access path, if it can be streamed as a probe side."""
        leaf = leaf_scan(child)
        if leaf is None:
            return None
        scan, filter_node = leaf
        if not self.schema.has_table(scan.table):
            return None
        try:
            provider = self.database.provider(scan.table)
        except KeyError:
            return None
        if not callable(getattr(provider, "iter_filtered_blocks", None)):
            return None
        if filter_node is not None:
            push = self._pushdowns.get(scan.node_id)
            if push is None or push.predicate is not filter_node.predicate:
                return None
            if not filter_node.predicate.columns():
                # Column-free predicates have a constant verdict; the fused
                # filtered-scan route handles them, keep joins off them.
                return None
        return leaf

    def _estimated_leaf_rows(self, scan: ScanNode, filter_node: FilterNode | None) -> int:
        """Summary-estimated output rows of a leaf (exact when computable)."""
        provider = self.database.provider(scan.table)
        total = provider.row_count
        if filter_node is None:
            return total
        summary = self._relation_summary(scan.table)
        if summary is None:
            return total
        table = self.schema.table(scan.table)
        box = self._predicate_box(filter_node.predicate, table)
        if box is None:
            return total
        count = summary.count_matching(box, pk_column=table.primary_key)
        return total if count is None else int(count)

    def _execute_streaming_join(self, node: JoinNode) -> _Block | None:
        """Build/probe hash join with the probe side streamed batch-by-batch.

        The build side — chosen as the input with the smaller summary
        cardinality — is materialised by ordinary (itself pushdown-enabled)
        execution; the probe side, which must be the leaf access path of a
        relation that supports filtered block iteration, streams through the
        build hash table so peak memory is O(build + batch + output) instead
        of O(both relations).  A semi-join box computed by the planner
        (:func:`~repro.plans.planner.compute_semijoin_pushdowns`) lets whole
        probe summary segments be skipped — their contribution to the probe
        filter's AQP annotation is recovered exactly from the summary — and
        masks generated probe rows that provably have no join partner.
        Output rows, column order and all annotations are bit-identical to
        the materialising route.  Returns ``None`` when the pattern does not
        apply (the caller then materialises both inputs).
        """
        condition = node.condition
        if isinstance(condition, DisjunctiveJoinCondition):
            # No single probe key column exists; the materialising route
            # unions the alternatives instead.
            self._fallback("disjunctive-condition")
            return None
        if condition.left_table == condition.right_table:
            self._fallback("self-join")
            return None  # self-joins keep the materialising route
        left_leaf = self._streamable_leaf(node.left)
        right_leaf = self._streamable_leaf(node.right)
        if left_leaf is None and right_leaf is None:
            self._fallback("no-streamable-leaf")
            return None
        if left_leaf is not None and right_leaf is not None:
            left_rows = self._estimated_leaf_rows(*left_leaf)
            right_rows = self._estimated_leaf_rows(*right_leaf)
            probe_is_left = left_rows >= right_rows
        else:
            probe_is_left = left_leaf is not None
        scan, filter_node = left_leaf if probe_is_left else right_leaf  # type: ignore[misc]
        if not condition.involves(scan.table):
            self._fallback("condition-table-mismatch")
            return None
        probe_key = condition.side_column(scan.table)
        build_table, build_key = condition.other_side(scan.table)
        table = self.schema.table(scan.table)
        if not table.has_column(probe_key):
            self._fallback("probe-key-missing")
            return None
        provider = self.database.provider(scan.table)

        push = self._pushdowns.get(scan.node_id)
        output = self._ordered_columns(
            None if push is None else push.output_columns, table
        )
        if probe_key not in output:
            self._fallback("probe-key-not-in-output")
            return None  # the join key must flow out of the probe scan
        predicate = filter_node.predicate if filter_node is not None else None
        box = (
            self._predicate_box(predicate, table)
            if predicate is not None
            else BoxCondition({})
        )
        semijoin = self._semijoins.get(scan.node_id)
        if semijoin is not None and not set(semijoin.conditions) <= set(output):
            semijoin = None

        build = self._execute_node(node.right if probe_is_left else node.left)
        build_key_name = f"{build_table}.{build_key}"
        if build_key_name not in build.columns:
            raise ExecutorError(
                f"join keys {scan.table}.{probe_key}/{build_key_name} not available"
            )
        build_keys = build.columns[build_key_name]

        stream_kwargs: dict[str, Any] = dict(
            predicate=predicate, box=box, columns=output, batch_size=self.batch_size
        )
        if semijoin is not None:
            stream_kwargs["skip_box"] = semijoin
        matched_total = 0
        probe_chunks: dict[str, list[NDArray[Any]]] = {name: [] for name in output}
        build_index_chunks: list[NDArray[Any]] = []
        for _start, generated, batch_matched, block in provider.iter_filtered_blocks(
            **stream_kwargs
        ):
            self._scanned_rows += generated
            matched_total += batch_matched
            if batch_matched == 0 or not block:
                # Semi-join-skipped segment: only its exact filter count
                # matters; none of its rows can produce a join partner.
                continue
            batch = block
            if semijoin is not None and generated:
                semi_mask = semijoin.evaluate(batch)
                if not semi_mask.all():
                    batch = {name: values[semi_mask] for name, values in batch.items()}
            probe_idx, build_idx = _hash_join_indices(batch[probe_key], build_keys)
            if len(probe_idx) == 0:
                continue
            for name in output:
                probe_chunks[name].append(batch[name][probe_idx])
            build_index_chunks.append(build_idx)

        if self.annotate:
            scan.cardinality = provider.row_count
            if filter_node is not None:
                filter_node.cardinality = matched_total

        build_indices = (
            np.concatenate(build_index_chunks)
            if build_index_chunks
            else np.empty(0, dtype=np.int64)
        )
        probe_columns = {
            name: (np.concatenate(chunks) if chunks else self._empty_column(table, name))
            for name, chunks in probe_chunks.items()
        }
        if not probe_is_left:
            # The materialising route orders output by left (here: build) row,
            # each left row's matches in probe order; a stable sort on the
            # accumulated build indices restores exactly that order.
            perm = np.argsort(build_indices, kind="stable")
            build_indices = build_indices[perm]
            probe_columns = {name: values[perm] for name, values in probe_columns.items()}

        probe_qualified = {
            f"{scan.table}.{name}": values for name, values in probe_columns.items()
        }
        build_gathered = {
            name: values[build_indices] for name, values in build.columns.items()
        }
        if probe_is_left:
            columns = {**probe_qualified, **build_gathered}
        else:
            columns = {**build_gathered, **probe_qualified}
        return _Block(columns=columns, row_count=int(len(build_indices)))

    # -- projection / aggregation -----------------------------------------

    def _resolve_output_column(self, block: _Block, name: str) -> str:
        if name in block.columns:
            return name
        matches = [key for key in block.columns if key.endswith("." + name)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ExecutorError(f"projection column {name!r} not found")
        raise ExecutorError(f"projection column {name!r} is ambiguous: {matches}")

    def _execute_project(self, node: ProjectNode) -> _Block:
        child = self._execute_node(node.child)
        columns: dict[str, NDArray[Any]] = {}
        for name in node.columns:
            resolved = self._resolve_output_column(child, name)
            columns[resolved] = child.columns[resolved]
        return _Block(columns=columns, row_count=child.row_count)

    def _execute_aggregate(self, node: AggregateNode) -> _Block:
        if node.function == "count":
            return self._execute_count(node)
        if node.function in ("sum", "avg"):
            return self._execute_sum_avg(node)
        raise ExecutorError(f"unsupported aggregate {node.function!r}")

    def _execute_count(self, node: AggregateNode) -> _Block:
        reason = "fastpath-disabled"
        if self.summary_fastpath:
            self._fallback_reason = None
            fast = self._summary_count(node.child)
            if fast is None:
                fast = self._summary_join_count(node.child)
            if fast is not None:
                self._record_route("aggregate", "summary")
                return _Block(
                    columns={"count": np.asarray([fast], dtype=np.int64)},
                    row_count=1,
                )
            reason = self._take_fallback_reason() or "not-applicable"
        child = self._execute_node(node.child)
        self._record_route("aggregate", "streaming", reason)
        return _Block(
            columns={"count": np.asarray([child.row_count], dtype=np.int64)},
            row_count=1,
        )

    def _execute_sum_avg(self, node: AggregateNode) -> _Block:
        if node.argument is None:
            raise ExecutorError(
                f"aggregate {node.function!r} requires a column argument"
            )
        reason = "fastpath-disabled"
        if self.summary_fastpath:
            self._fallback_reason = None
            fast = self._summary_sum(node.child, node.argument)
            if fast is not None:
                count, total = fast
                self._record_route("aggregate", "summary")
                value = total if node.function == "sum" else (
                    total / count if count else 0.0
                )
                return _Block(
                    columns={node.function: np.asarray([value], dtype=np.float64)},
                    row_count=1,
                )
            reason = self._take_fallback_reason() or "not-applicable"
        child = self._execute_node(node.child)
        resolved = self._resolve_output_column(child, node.argument)
        values = np.asarray(child.columns[resolved], dtype=np.float64)
        total = math.fsum(values.tolist())
        count = child.row_count
        self._record_route("aggregate", "streaming", reason)
        value = total if node.function == "sum" else (total / count if count else 0.0)
        return _Block(
            columns={node.function: np.asarray([value], dtype=np.float64)},
            row_count=1,
        )

    def _summary_count(self, child: PlanNode) -> int | None:
        """Answer a COUNT aggregate straight from a relation summary.

        Applies when the aggregate input is a (possibly filtered) scan of a
        summary-backed dataless relation and the filter normalises to a box
        condition the summary can count *exactly* (see
        :meth:`~repro.core.summary.RelationSummary.count_matching`); returns
        ``None`` otherwise so the caller falls back to streaming execution.
        Annotates the scan/filter nodes with the same cardinalities streaming
        would produce, without generating a single tuple.
        """
        leaf = leaf_scan(child)
        if leaf is None:
            self._fallback("no-leaf-scan")
            return None
        scan, filter_node = leaf

        summary = self._relation_summary(scan.table)
        if summary is None:
            self._fallback("not-summary-backed")
            return None
        provider = self.database.provider(scan.table)

        table = self.schema.table(scan.table)
        if filter_node is None:
            box = BoxCondition({})
        else:
            box = self._predicate_box(filter_node.predicate, table)
            if box is None:
                self._fallback("predicate-not-box")
                return None
        count = summary.count_matching(box, pk_column=table.primary_key)
        if count is None:
            self._fallback("summary-not-exact")
            return None
        if self.annotate:
            scan.cardinality = provider.row_count
            if filter_node is not None:
                filter_node.cardinality = int(count)
        return int(count)

    def _summary_join_count(self, child: PlanNode) -> int | None:
        """Answer COUNT over a left-deep FK–PK join tree from the summaries.

        Applies when every input of the left-deep join chain is the leaf
        access path of a summary-backed dataless relation, every join
        condition follows a schema foreign-key edge onto the referenced
        primary key (:func:`~repro.plans.planner.fk_join_edge`), and every
        pushed filter normalises to an exact box.  This covers the single
        FK–PK join, multi-way chains (``A→B→C``: the middle relation's
        matching pks are first narrowed by *its own* FK condition toward
        ``C``) and stars (one fact referencing several dimensions) — any
        join subset whose FK edges form an out-tree from a single
        referencing root.

        Each referenced relation's exactly-matching pk indices are projected
        with :meth:`~repro.core.summary.RelationSummary.matching_pk_intervals`
        (``exact=True``), folded into the referencing side's box as a
        condition on its FK column, and the root is counted with
        :meth:`_count_rows_matching` — O(#summary rows × #joins) total, zero
        tuples generated, and exact because every referencing tuple joins at
        most one (unique, auto-numbered) referenced pk.  Returns ``None``
        whenever any step is not exactly countable, so the caller falls back
        to streaming execution — mirroring :meth:`_summary_count`'s
        bit-identical guarantee.  Annotates every leaf and every join node
        with the cardinalities streaming would produce (each intermediate
        join is counted against only the tables joined so far).
        """
        spine: list[JoinNode] = []
        node = child
        while isinstance(node, JoinNode):
            spine.append(node)
            node = node.left
        if not spine:
            return None
        spine.reverse()

        anchor_leaf = leaf_scan(node)
        if anchor_leaf is None:
            self._fallback("no-leaf-scan")
            return None
        leaves: dict[str, tuple[ScanNode, FilterNode | None]] = {
            anchor_leaf[0].table: anchor_leaf
        }
        step_tables: list[str] = []
        for join in spine:
            right_leaf = leaf_scan(join.right)
            if right_leaf is None or right_leaf[0].table in leaves:
                self._fallback("join-shape-unsupported")
                return None
            leaves[right_leaf[0].table] = right_leaf
            step_tables.append(right_leaf[0].table)

        edges: list[tuple[str, str, str, str]] = []
        for join in spine:
            edge = fk_join_edge(join.condition, self.schema)
            if edge is None or not set(edge[::2]) <= set(leaves):
                self._fallback("non-fk-join")
                return None
            edges.append(edge)

        summaries: dict[str, Any] = {}
        boxes: dict[str, BoxCondition] = {}
        for table_name, (_scan, filter_node) in leaves.items():
            summary = self._relation_summary(table_name)
            if summary is None or not callable(
                getattr(summary, "matching_pk_intervals", None)
            ):
                self._fallback("not-summary-backed")
                return None
            summaries[table_name] = summary
            table = self.schema.table(table_name)
            if filter_node is None:
                box: BoxCondition | None = BoxCondition({})
            else:
                box = self._predicate_box(filter_node.predicate, table)
                if box is None:
                    self._fallback("predicate-not-box")
                    return None
            boxes[table_name] = box

        # Filter annotations: tuples matching each table's own box only.
        filter_counts: dict[str, int] = {}
        for table_name in leaves:
            count = summaries[table_name].count_matching(
                boxes[table_name],
                pk_column=self.schema.table(table_name).primary_key,
            )
            if count is None:
                self._fallback("summary-not-exact")
                return None
            filter_counts[table_name] = int(count)

        # Each intermediate join is the join of the tables attached so far,
        # so its cardinality uses only the edges inside that prefix.
        prefix = [anchor_leaf[0].table]
        join_counts: list[int] = []
        for index, table_name in enumerate(step_tables):
            prefix.append(table_name)
            count = self._count_fk_prefix(
                prefix, edges[: index + 1], boxes, summaries
            )
            if count is None:
                self._fallback("join-not-exactly-countable")
                return None
            join_counts.append(count)

        if self.annotate:
            for table_name, (scan, filter_node) in leaves.items():
                scan.cardinality = self.database.provider(table_name).row_count
                if filter_node is not None:
                    filter_node.cardinality = filter_counts[table_name]
            for join, count in zip(spine, join_counts):
                join.cardinality = int(count)
        return int(join_counts[-1])

    def _count_fk_prefix(
        self,
        tables: list[str],
        edges: list[tuple[str, str, str, str]],
        boxes: Mapping[str, BoxCondition],
        summaries: Mapping[str, Any],
    ) -> int | None:
        """Exact row count of an FK out-tree join over ``tables``.

        ``edges`` are ``(fk_table, fk_column, ref_table, ref_column)``
        resolutions.  The join must form an out-tree from a single
        referencing root (every other table is the referenced side of
        exactly one edge); every table's matching pk intervals are computed
        bottom-up — own box plus the FK conditions toward its referenced
        children — and the root's tuples are counted against its box plus
        its own FK conditions.  Returns ``None`` when the shape does not
        apply (two facts sharing a dimension multiply cardinalities, which
        interval arithmetic cannot express) or a step is not exactly
        countable.
        """
        ref_tables = [edge[2] for edge in edges]
        if len(set(ref_tables)) != len(ref_tables):
            return None
        roots = [table for table in tables if table not in ref_tables]
        if len(roots) != 1:
            return None
        root = roots[0]
        out_edges: dict[str, list[tuple[str, str]]] = {}
        for fk_table, fk_column, ref_table, _ref_column in edges:
            out_edges.setdefault(fk_table, []).append((fk_column, ref_table))

        def conditioned_box(table_name: str) -> BoxCondition | None:
            box = boxes[table_name]
            for fk_column, ref_table in out_edges.get(table_name, ()):
                intervals = effective_intervals(ref_table)
                if intervals is None:
                    return None
                box = box.intersect(BoxCondition({fk_column: intervals}))
            return box

        def effective_intervals(table_name: str) -> IntervalSet | None:
            box = conditioned_box(table_name)
            if box is None:
                return None
            return summaries[table_name].matching_pk_intervals(
                box,
                pk_column=self.schema.table(table_name).primary_key,
                exact=True,
            )

        combined = conditioned_box(root)
        if combined is None:
            return None
        return self._count_rows_matching(
            summaries[root], self.schema.table(root), combined
        )

    def _count_rows_matching(
        self, summary: Any, table: Table, box: BoxCondition
    ) -> int | None:
        """Exact number of tuples of a summary-backed relation matching ``box``.

        Builds on :meth:`~repro.core.summary.RelationSummary.classify_row` —
        the one place the per-row pass/fail/partial column arithmetic lives —
        and extends it with round-robin prefix counting for the one
        combination :meth:`~repro.core.summary.RelationSummary
        .count_matching_row` cannot fold: a partial pk window *plus* one
        partially-matching FK spread.  Offsets are pk indices shifted by the
        segment start, so the pk window is an offset range and prefix-count
        differences of :meth:`~repro.core.summary.FKReference
        .count_matching_offsets` count its matching tuples exactly.  Two
        partial FK columns remain correlated through the tuple offset:
        returns ``None`` so the caller falls back to streaming.
        """
        pk_column = table.primary_key
        total = 0
        for position, row in enumerate(summary.rows):
            match = summary.classify_row(position, box, pk_column=pk_column)
            if match is None:
                continue
            counted = self._row_matched_count(summary, position, row, match)
            if counted is None:
                return None
            total += counted
        return total

    @staticmethod
    def _row_matched_count(
        summary: Any, position: int, row: Any, match: Any
    ) -> int | None:
        """Matched tuple count of one classified summary row, if countable."""
        if not match.partial_fks:
            if match.pk_window is not None:
                return match.pk_window.count_integers()
            return match.count
        if len(match.partial_fks) > 1:
            return None
        ((column, (allowed, matched)),) = match.partial_fks.items()
        if match.pk_window is None:
            return matched
        ref = row.fk_refs[column]
        start, _end = summary.pk_interval_of_row(position)
        counted = 0
        for piece in match.pk_window:
            low = int(math.ceil(piece.low)) - start
            high = low + piece.count_integers()
            counted += ref.count_matching_offsets(
                high, allowed
            ) - ref.count_matching_offsets(low, allowed)
        return counted

    def _aggregate_argument_column(self, table: Table, table_name: str, argument: str) -> str | None:
        """Resolve a SUM/AVG argument onto one table's column, else ``None``."""
        name = argument
        if "." in name:
            prefix, name = name.split(".", 1)
            if prefix != table_name:
                return None
        return name if table.has_column(name) else None

    def _summary_sum(self, child: PlanNode, argument: str) -> tuple[int, float] | None:
        """``(count, sum)`` of a column straight from a relation summary.

        Applies when the aggregate input is a (possibly filtered) scan of a
        summary-backed dataless relation, the filter normalises to an exact
        box, and every matching region's contribution is exactly summable:

        * a **value column** is generated as its region's constant
          representative, so the contribution is ``matched × value`` —
          exact for any countable matched subset;
        * the **primary key** is the tuple index, so a fully-matching region
          or a pk window sums as an arithmetic series
          (:meth:`~repro.sql.predicates.IntervalSet.sum_integers`); a
          partial FK match scatters the matching pks, which is not summable;
        * a **foreign-key column** varies tuple-by-tuple with the
          round-robin spread: never summable from the summary.

        Region terms are combined with :func:`math.fsum`; streaming
        computes :func:`math.fsum` over the generated tuples, so the two
        routes agree exactly whenever the per-region products are exact
        (integer or dyadic representatives — every workload in this repo).
        Returns ``None`` otherwise, falling back to streaming.  Annotates
        the scan/filter nodes with the same cardinalities streaming would
        produce.
        """
        leaf = leaf_scan(child)
        if leaf is None:
            self._fallback("no-leaf-scan")
            return None
        scan, filter_node = leaf
        summary = self._relation_summary(scan.table)
        if summary is None:
            self._fallback("not-summary-backed")
            return None
        table = self.schema.table(scan.table)
        column = self._aggregate_argument_column(table, scan.table, argument)
        if column is None:
            self._fallback("argument-not-resolvable")
            return None
        provider = self.database.provider(scan.table)
        if filter_node is None:
            box: BoxCondition | None = BoxCondition({})
        else:
            box = self._predicate_box(filter_node.predicate, table)
            if box is None:
                self._fallback("predicate-not-box")
                return None

        pk_column = table.primary_key
        count_total = 0
        terms: list[float] = []
        for position, row in enumerate(summary.rows):
            match = summary.classify_row(position, box, pk_column=pk_column)
            if match is None:
                continue
            matched = self._row_matched_count(summary, position, row, match)
            if matched is None:
                self._fallback("summary-not-exact")
                return None
            if matched == 0:
                continue
            count_total += matched
            if column == pk_column:
                if match.partial_fks:
                    # Matching pks scattered by the fk spread: not summable.
                    self._fallback("pk-scattered-by-fk")
                    return None
                if match.pk_window is not None:
                    terms.append(match.pk_window.sum_integers())
                else:
                    start, end = summary.pk_interval_of_row(position)
                    terms.append(Interval(float(start), float(end)).sum_integers())
            elif column in row.fk_refs:
                self._fallback("fk-argument-not-summable")
                return None  # round-robin targets vary per tuple
            else:
                terms.append(matched * float(row.values.get(column, 0.0)))
        total = math.fsum(terms)

        if self.annotate:
            scan.cardinality = provider.row_count
            if filter_node is not None:
                filter_node.cardinality = count_total
        return count_total, total


def _hash_join_indices(
    left_keys: NDArray[Any], right_keys: NDArray[Any]
) -> tuple[NDArray[Any], NDArray[Any]]:
    """Return index pairs (left_idx, right_idx) of matching key values.

    Implemented as a fully vectorised sort-merge join (duplicates on either
    side are handled), which keeps the client-site AQP extraction fast even
    for multi-hundred-thousand-row fact tables.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    # Sort the build (right) side once, then locate each probe key's run.
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    run_start = np.searchsorted(sorted_right, left_keys, side="left")
    run_end = np.searchsorted(sorted_right, left_keys, side="right")
    counts = run_end - run_start
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    left_indices = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    cumulative = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cumulative - counts, counts)
    right_positions = np.repeat(run_start, counts) + offsets
    right_indices = order[right_positions]
    return left_indices, right_indices
