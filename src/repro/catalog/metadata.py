"""CODD-style database metadata: schema + statistics, without any data.

HYDRA is part of the CODD "dataless databases" project: the vendor never sees
rows, only the schema, per-table row counts and per-column statistics.  The
:class:`DatabaseMetadata` object is exactly that package (it is what the
anonymisation layer operates on, and what the metadata-transfer step of the
paper's architecture ships to the vendor so both sites choose the same plans).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .schema import Schema
from .statistics import ColumnStatistics, TableStatistics, build_column_statistics

__all__ = ["DatabaseMetadata", "collect_metadata"]


@dataclass
class DatabaseMetadata:
    """Schema plus statistics for every table — no tuples."""

    schema: Schema
    statistics: dict[str, TableStatistics] = field(default_factory=dict)

    def row_count(self, table: str) -> int:
        if table in self.statistics:
            return self.statistics[table].row_count
        raise KeyError(f"no statistics recorded for table {table!r}")

    def table_statistics(self, table: str) -> TableStatistics:
        if table not in self.statistics:
            raise KeyError(f"no statistics recorded for table {table!r}")
        return self.statistics[table]

    def column_statistics(self, table: str, column: str) -> ColumnStatistics:
        return self.table_statistics(table).column(column)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema.to_dict(),
            "statistics": {
                name: stats.to_dict() for name, stats in self.statistics.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DatabaseMetadata":
        return cls(
            schema=Schema.from_dict(payload["schema"]),
            statistics={
                name: TableStatistics.from_dict(item)
                for name, item in payload.get("statistics", {}).items()
            },
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "DatabaseMetadata":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "DatabaseMetadata":
        return cls.from_json(Path(path).read_text())


def collect_metadata(database: "Database", max_mcvs: int = 10, histogram_buckets: int = 20) -> DatabaseMetadata:  # noqa: F821
    """Profile a materialised database into :class:`DatabaseMetadata`.

    This is the client-site profiling step shown in Figure 3 of the paper:
    row counts, most common values and equi-depth histogram bounds per column.
    """
    statistics: dict[str, TableStatistics] = {}
    for table in database.schema:
        data = database.table_data(table.name)
        columns: dict[str, ColumnStatistics] = {}
        for column in table.columns:
            columns[column.name] = build_column_statistics(
                column.name,
                data.column(column.name),
                max_mcvs=max_mcvs,
                histogram_buckets=histogram_buckets,
            )
        statistics[table.name] = TableStatistics(
            table=table.name, row_count=data.row_count, columns=columns
        )
    return DatabaseMetadata(schema=database.schema, statistics=statistics)
