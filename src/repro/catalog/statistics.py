"""Column statistics: most-common values and equi-depth histograms.

The client screen of the HYDRA demo (paper Figure 3) profiles metadata
statistics per column — the most frequent values and the bucket boundaries of
the equi-depth histogram, mirroring PostgreSQL's ``pg_stats``.  These
statistics are part of the CODD-style metadata transferred to the vendor; they
are also what the vendor uses to pick plausible domains when a column is not
constrained by any workload predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence, TYPE_CHECKING

import numpy as np
from numpy.typing import NDArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sql.predicates import IntervalSet

__all__ = ["ColumnStatistics", "TableStatistics", "build_column_statistics"]


@dataclass
class ColumnStatistics:
    """Summary statistics of one column (over its internal numeric encoding)."""

    column: str
    row_count: int
    null_count: int = 0
    distinct_count: int = 0
    min_value: float | None = None
    max_value: float | None = None
    most_common_values: list[float] = field(default_factory=list)
    most_common_freqs: list[float] = field(default_factory=list)
    histogram_bounds: list[float] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "column": self.column,
            "row_count": self.row_count,
            "null_count": self.null_count,
            "distinct_count": self.distinct_count,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "most_common_values": list(self.most_common_values),
            "most_common_freqs": list(self.most_common_freqs),
            "histogram_bounds": list(self.histogram_bounds),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ColumnStatistics":
        return cls(
            column=payload["column"],
            row_count=int(payload["row_count"]),
            null_count=int(payload.get("null_count", 0)),
            distinct_count=int(payload.get("distinct_count", 0)),
            min_value=payload.get("min_value"),
            max_value=payload.get("max_value"),
            most_common_values=list(payload.get("most_common_values", [])),
            most_common_freqs=list(payload.get("most_common_freqs", [])),
            histogram_bounds=list(payload.get("histogram_bounds", [])),
        )

    # -- selectivity estimation -----------------------------------------

    def estimate_intervals_fraction(self, intervals: "IntervalSet") -> float:
        """Estimate the fraction of rows whose value falls in an interval set.

        ``intervals`` is an :class:`repro.sql.predicates.IntervalSet`; the
        estimate clamps unbounded endpoints to the observed min/max and sums
        the per-interval range estimates (intervals are disjoint).
        """
        if self.min_value is None or self.max_value is None:
            return 0.0
        total = 0.0
        for interval in intervals:
            low = interval.low if np.isfinite(interval.low) else self.min_value
            high = interval.high if np.isfinite(interval.high) else self.max_value + 1.0
            if high <= low:
                continue
            total += self.estimate_range_fraction(low, high)
        return min(1.0, total)

    def estimate_range_fraction(self, low: float, high: float) -> float:
        """Estimate the fraction of rows with value in ``[low, high)``.

        Combines the MCV list with the equi-depth histogram in the same way a
        textbook optimiser (and PostgreSQL) would.  Used by the workload
        generator to pick predicates with target selectivities and by the
        scenario feasibility checker for sanity warnings.
        """
        if self.row_count == 0:
            return 0.0
        if self.min_value is None or self.max_value is None:
            return 0.0
        mcv_fraction = 0.0
        mcv_total = 0.0
        for value, freq in zip(self.most_common_values, self.most_common_freqs):
            mcv_total += freq
            if low <= value < high:
                mcv_fraction += freq
        rest_fraction = max(0.0, 1.0 - mcv_total)
        if not self.histogram_bounds or len(self.histogram_bounds) < 2:
            span = max(self.max_value - self.min_value, 1e-12)
            overlap = max(0.0, min(high, self.max_value) - max(low, self.min_value))
            return min(1.0, mcv_fraction + rest_fraction * overlap / span)
        bounds = self.histogram_bounds
        buckets = len(bounds) - 1
        covered = 0.0
        for i in range(buckets):
            b_low, b_high = bounds[i], bounds[i + 1]
            width = max(b_high - b_low, 1e-12)
            overlap = max(0.0, min(high, b_high) - max(low, b_low))
            covered += overlap / width
        return min(1.0, mcv_fraction + rest_fraction * covered / buckets)


@dataclass
class TableStatistics:
    """Row count plus per-column statistics for one table."""

    table: str
    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        if name not in self.columns:
            raise KeyError(f"no statistics for column {name!r} of table {self.table!r}")
        return self.columns[name]

    def to_dict(self) -> dict[str, Any]:
        return {
            "table": self.table,
            "row_count": self.row_count,
            "columns": {name: stats.to_dict() for name, stats in self.columns.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TableStatistics":
        return cls(
            table=payload["table"],
            row_count=int(payload["row_count"]),
            columns={
                name: ColumnStatistics.from_dict(item)
                for name, item in payload.get("columns", {}).items()
            },
        )


def build_column_statistics(
    column: str,
    values: Sequence[float] | NDArray[Any],
    max_mcvs: int = 10,
    histogram_buckets: int = 20,
) -> ColumnStatistics:
    """Compute :class:`ColumnStatistics` from raw (encoded) column values."""
    array = np.asarray(values, dtype=np.float64)
    row_count = int(array.size)
    if row_count == 0:
        return ColumnStatistics(column=column, row_count=0)

    finite = array[np.isfinite(array)]
    null_count = row_count - int(finite.size)
    if finite.size == 0:
        return ColumnStatistics(column=column, row_count=row_count, null_count=null_count)

    unique, counts = np.unique(finite, return_counts=True)
    distinct = int(unique.size)

    order = np.argsort(counts)[::-1]
    mcv_count = min(max_mcvs, distinct)
    mcv_indices = order[:mcv_count]
    most_common_values = [float(unique[i]) for i in mcv_indices]
    most_common_freqs = [float(counts[i]) / row_count for i in mcv_indices]

    mcv_set = set(most_common_values)
    rest = finite[~np.isin(finite, list(mcv_set))] if mcv_set else finite
    if rest.size >= 2:
        quantiles = np.linspace(0.0, 1.0, histogram_buckets + 1)
        bounds = np.quantile(rest, quantiles)
        histogram_bounds = [float(b) for b in bounds]
    else:
        histogram_bounds = []

    return ColumnStatistics(
        column=column,
        row_count=row_count,
        null_count=null_count,
        distinct_count=distinct,
        min_value=float(finite.min()),
        max_value=float(finite.max()),
        most_common_values=most_common_values,
        most_common_freqs=most_common_freqs,
        histogram_bounds=histogram_bounds,
    )
