"""Column data types used throughout the HYDRA reproduction.

The original HYDRA system works on PostgreSQL relations; the regeneration
algorithms only need a small, well-defined type lattice: integers, floats,
dates (represented as ordinal integers) and (dictionary-encoded) strings.
Every type knows how to map between its *external* Python representation and
the *internal* numeric domain the region-partitioning / LP machinery operates
on.  Keeping all columns numeric internally means that every predicate can be
normalised to interval conditions over a totally ordered domain, which is the
assumption the paper's region-partitioning algorithm relies on.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, Sequence

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "TypeKind",
    "DataType",
    "IntegerType",
    "FloatType",
    "DateType",
    "StringType",
    "INTEGER",
    "FLOAT",
    "DATE",
    "type_from_name",
]


class TypeKind(Enum):
    """Enumeration of the supported logical type kinds."""

    INTEGER = "integer"
    FLOAT = "float"
    DATE = "date"
    STRING = "string"


_DATE_EPOCH = datetime.date(1990, 1, 1)


@dataclass(frozen=True)
class DataType:
    """Base class for column types.

    A :class:`DataType` provides the bridge between external (user-facing)
    values and the internal numeric encoding used by storage, statistics and
    the summary/LP machinery.
    """

    kind: TypeKind

    @property
    def numpy_dtype(self) -> np.dtype:
        """NumPy dtype used by the column-store for this type."""
        raise NotImplementedError

    @property
    def is_discrete(self) -> bool:
        """Whether the internal domain is integer-valued."""
        raise NotImplementedError

    def encode(self, value: Any) -> float:
        """Map an external value to its internal numeric representation."""
        raise NotImplementedError

    def decode(self, value: float) -> Any:
        """Map an internal numeric value back to an external value."""
        raise NotImplementedError

    def encode_many(self, values: Iterable[Any]) -> NDArray[Any]:
        """Vectorised :meth:`encode`."""
        return np.array([self.encode(v) for v in values], dtype=self.numpy_dtype)

    def decode_many(self, values: Sequence[float]) -> list[Any]:
        """Vectorised :meth:`decode`."""
        return [self.decode(v) for v in values]

    def name(self) -> str:
        """Short name used in serialised schemas."""
        return self.kind.value

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable description of the type."""
        return {"kind": self.kind.value}


@dataclass(frozen=True)
class IntegerType(DataType):
    """64-bit integer column."""

    kind: TypeKind = TypeKind.INTEGER

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.int64)

    @property
    def is_discrete(self) -> bool:
        return True

    def encode(self, value: Any) -> float:
        return int(value)

    def decode(self, value: float) -> Any:
        return int(round(float(value)))


@dataclass(frozen=True)
class FloatType(DataType):
    """Double-precision floating point column."""

    kind: TypeKind = TypeKind.FLOAT

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.float64)

    @property
    def is_discrete(self) -> bool:
        return False

    def encode(self, value: Any) -> float:
        return float(value)

    def decode(self, value: float) -> Any:
        return float(value)


@dataclass(frozen=True)
class DateType(DataType):
    """Date column, internally stored as days since an epoch.

    The ordinal encoding keeps dates totally ordered, so range predicates on
    dates (``d_date between ...``) become ordinary interval conditions.
    """

    kind: TypeKind = TypeKind.DATE

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.int64)

    @property
    def is_discrete(self) -> bool:
        return True

    def encode(self, value: Any) -> float:
        if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
            return (value - _DATE_EPOCH).days
        if isinstance(value, datetime.datetime):
            return (value.date() - _DATE_EPOCH).days
        if isinstance(value, str):
            parsed = datetime.date.fromisoformat(value)
            return (parsed - _DATE_EPOCH).days
        return int(value)

    def decode(self, value: float) -> Any:
        return _DATE_EPOCH + datetime.timedelta(days=int(round(float(value))))


@dataclass(frozen=True)
class StringType(DataType):
    """Dictionary-encoded string column.

    The dictionary maps each distinct string to a dense integer code; codes
    follow the lexicographic order of the dictionary, so range predicates on
    strings remain order-preserving.  The dictionary travels with the type so
    that the vendor site can decode regenerated values back into readable
    strings (as in the paper's ITEM example: ``pop``, ``Music`` ...).
    """

    kind: TypeKind = TypeKind.STRING
    dictionary: tuple[str, ...] = ()

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.int64)

    @property
    def is_discrete(self) -> bool:
        return True

    def _code_map(self) -> dict[str, int]:
        return {value: code for code, value in enumerate(self.dictionary)}

    def encode(self, value: Any) -> float:
        if isinstance(value, (int, np.integer)):
            return int(value)
        codes = self._code_map()
        if value not in codes:
            raise KeyError(f"string value {value!r} not present in dictionary")
        return codes[value]

    def decode(self, value: float) -> Any:
        code = int(round(float(value)))
        if 0 <= code < len(self.dictionary):
            return self.dictionary[code]
        return f"value_{code}"

    @classmethod
    def from_values(cls, values: Iterable[str]) -> "StringType":
        """Build a dictionary-encoded type from observed values."""
        return cls(dictionary=tuple(sorted(set(values))))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind.value, "dictionary": list(self.dictionary)}


INTEGER = IntegerType()
FLOAT = FloatType()
DATE = DateType()


def type_from_name(name: str, dictionary: Sequence[str] | None = None) -> DataType:
    """Instantiate a :class:`DataType` from its serialised name."""
    kind = TypeKind(name)
    if kind is TypeKind.INTEGER:
        return INTEGER
    if kind is TypeKind.FLOAT:
        return FLOAT
    if kind is TypeKind.DATE:
        return DATE
    if kind is TypeKind.STRING:
        return StringType(dictionary=tuple(dictionary or ()))
    raise ValueError(f"unknown type name: {name}")


def type_from_dict(payload: dict[str, Any]) -> DataType:
    """Inverse of :meth:`DataType.to_dict`."""
    return type_from_name(payload["kind"], payload.get("dictionary"))
