"""Catalog: data types, schema, statistics and CODD-style metadata."""

from .metadata import DatabaseMetadata, collect_metadata
from .schema import Column, ForeignKey, Schema, SchemaError, Table
from .statistics import ColumnStatistics, TableStatistics, build_column_statistics
from .types import (
    DATE,
    FLOAT,
    INTEGER,
    DataType,
    DateType,
    FloatType,
    IntegerType,
    StringType,
    TypeKind,
    type_from_name,
)

__all__ = [
    "Column",
    "ColumnStatistics",
    "DATE",
    "DataType",
    "DatabaseMetadata",
    "DateType",
    "FLOAT",
    "FloatType",
    "ForeignKey",
    "INTEGER",
    "IntegerType",
    "Schema",
    "SchemaError",
    "StringType",
    "Table",
    "TableStatistics",
    "TypeKind",
    "build_column_statistics",
    "collect_metadata",
    "type_from_name",
]
