"""Relational schema model: columns, tables, keys and the foreign-key graph.

The schema is the first element of the information package a HYDRA client
ships to the vendor (paper Figure 2/3).  Besides naming columns and types it
records the primary key of each relation and every foreign-key reference;
the foreign-key graph drives the topological processing order used by the
preprocessor (referenced relations are summarised before referencing ones,
so that borrowed predicates can be aligned deterministically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

import networkx as nx

from .types import DataType, type_from_dict

__all__ = ["Column", "ForeignKey", "Table", "Schema", "SchemaError"]


class SchemaError(ValueError):
    """Raised for malformed schemas (unknown tables/columns, cyclic FKs...)."""


@dataclass(frozen=True)
class Column:
    """A single column of a relation."""

    name: str
    dtype: DataType
    nullable: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "type": self.dtype.to_dict(),
            "nullable": self.nullable,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Column":
        return cls(
            name=payload["name"],
            dtype=type_from_dict(payload["type"]),
            nullable=bool(payload.get("nullable", False)),
        )


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key reference ``table.column -> ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "column": self.column,
            "ref_table": self.ref_table,
            "ref_column": self.ref_column,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ForeignKey":
        return cls(
            column=payload["column"],
            ref_table=payload["ref_table"],
            ref_column=payload["ref_column"],
        )


@dataclass
class Table:
    """A relation: named columns, an optional primary key and foreign keys."""

    name: str
    columns: list[Column]
    primary_key: str | None = None
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        if self.primary_key is not None and self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise SchemaError(
                    f"foreign key column {fk.column!r} is not a column of {self.name!r}"
                )

    # -- lookups ---------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def foreign_key_for(self, column: str) -> ForeignKey | None:
        for fk in self.foreign_keys:
            if fk.column == column:
                return fk
        return None

    @property
    def foreign_key_columns(self) -> set[str]:
        return {fk.column for fk in self.foreign_keys}

    def value_columns(self) -> list[Column]:
        """Columns that carry data values (everything except the primary key).

        Foreign-key columns *are* value columns: the summary stores explicit
        reference intervals for them.
        """
        return [column for column in self.columns if column.name != self.primary_key]

    def non_key_columns(self) -> list[Column]:
        """Columns that are neither the primary key nor foreign keys."""
        fk_columns = self.foreign_key_columns
        return [
            column
            for column in self.columns
            if column.name != self.primary_key and column.name not in fk_columns
        ]

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "columns": [column.to_dict() for column in self.columns],
            "primary_key": self.primary_key,
            "foreign_keys": [fk.to_dict() for fk in self.foreign_keys],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Table":
        return cls(
            name=payload["name"],
            columns=[Column.from_dict(item) for item in payload["columns"]],
            primary_key=payload.get("primary_key"),
            foreign_keys=[
                ForeignKey.from_dict(item) for item in payload.get("foreign_keys", [])
            ],
        )


@dataclass
class Schema:
    """A database schema: a set of tables plus the derived foreign-key graph."""

    tables: dict[str, Table] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._validate_references()

    # -- construction ----------------------------------------------------

    @classmethod
    def from_tables(cls, tables: Iterable[Table]) -> "Schema":
        return cls(tables={table.name: table for table in tables})

    def add_table(self, table: Table) -> None:
        if table.name in self.tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self.tables[table.name] = table
        self._validate_references()

    def _validate_references(self) -> None:
        for table in self.tables.values():
            for fk in table.foreign_keys:
                if fk.ref_table not in self.tables:
                    # Allow forward references during incremental construction;
                    # they are re-checked whenever a table is added.
                    continue
                ref = self.tables[fk.ref_table]
                if not ref.has_column(fk.ref_column):
                    raise SchemaError(
                        f"foreign key {table.name}.{fk.column} references missing "
                        f"column {fk.ref_table}.{fk.ref_column}"
                    )

    # -- lookups ---------------------------------------------------------

    def table(self, name: str) -> Table:
        if name not in self.tables:
            raise SchemaError(f"schema has no table {name!r}")
        return self.tables[name]

    def has_table(self, name: str) -> bool:
        return name in self.tables

    @property
    def table_names(self) -> list[str]:
        return list(self.tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables.values())

    def __len__(self) -> int:
        return len(self.tables)

    def resolve_column(self, qualified: str) -> tuple[Table, Column]:
        """Resolve ``table.column`` (or a unique bare column name)."""
        if "." in qualified:
            table_name, column_name = qualified.split(".", 1)
            table = self.table(table_name)
            return table, table.column(column_name)
        matches = [
            (table, table.column(qualified))
            for table in self.tables.values()
            if table.has_column(qualified)
        ]
        if not matches:
            raise SchemaError(f"no table has a column named {qualified!r}")
        if len(matches) > 1:
            owners = ", ".join(table.name for table, _ in matches)
            raise SchemaError(f"column {qualified!r} is ambiguous (in {owners})")
        return matches[0]

    # -- foreign-key graph ----------------------------------------------

    def foreign_key_graph(self) -> nx.DiGraph:
        """Directed graph with an edge ``referencing -> referenced`` per FK."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.tables)
        for table in self.tables.values():
            for fk in table.foreign_keys:
                graph.add_edge(table.name, fk.ref_table, column=fk.column)
        return graph

    def topological_order(self) -> list[str]:
        """Tables ordered so that referenced tables come before referencing ones.

        This is the processing order of the HYDRA preprocessor / summary
        generator: dimensions before facts in a star schema.
        """
        graph = self.foreign_key_graph()
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible as exc:
            raise SchemaError("foreign-key graph contains a cycle") from exc
        # topological_sort on referencing->referenced edges puts fact tables
        # first; reverse so referenced tables come first.
        return list(reversed(order))

    def referencing_tables(self, name: str) -> list[tuple[Table, ForeignKey]]:
        """All (table, fk) pairs that reference the given table."""
        result = []
        for table in self.tables.values():
            for fk in table.foreign_keys:
                if fk.ref_table == name:
                    result.append((table, fk))
        return result

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"tables": [table.to_dict() for table in self.tables.values()]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Schema":
        return cls.from_tables(Table.from_dict(item) for item in payload["tables"])
