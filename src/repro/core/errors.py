"""Exception hierarchy of the HYDRA core."""

from __future__ import annotations

__all__ = [
    "HydraError",
    "DecompositionError",
    "RegionExplosionError",
    "SolverError",
    "InfeasibleConstraintsError",
    "SummaryError",
    "ParallelGenerationError",
]


class HydraError(Exception):
    """Base class for all HYDRA-specific errors."""


class DecompositionError(HydraError):
    """The workload cannot be decomposed into per-relation constraints.

    Raised for plan shapes outside the supported SPJ / key-FK-join class
    (e.g. joins that are not along a declared foreign key).
    """


class RegionExplosionError(HydraError):
    """Region partitioning exceeded the configured variable budget."""


class SolverError(HydraError):
    """The LP solver failed (numerical issues or missing backend)."""


class InfeasibleConstraintsError(HydraError):
    """The per-relation LP has no feasible solution in exact mode.

    Scenario construction catches this to report which injected cardinality
    assignments are unrealisable.
    """

    def __init__(
        self, relation: str, message: str, residuals: dict[str, float] | None = None
    ) -> None:
        super().__init__(f"constraints on relation {relation!r} are infeasible: {message}")
        self.relation = relation
        self.residuals = residuals or {}


class SummaryError(HydraError):
    """The database summary is malformed or inconsistent with its schema."""


class ParallelGenerationError(HydraError):
    """Sharded parallel regeneration failed (a worker process died or raised).

    Carries the failing worker's shard and traceback text so the parent
    process can report the root cause without sharing memory with workers.
    ``lane`` is the failing worker's lane id and ``last_completed_chunk``
    the global index of the last chunk that lane fully streamed back
    (``None`` when it died before completing any) — both sourced from the
    parent-side per-lane accounting, so they are available even when the
    worker died without a word.
    """

    def __init__(
        self,
        message: str,
        *,
        lane: int | None = None,
        last_completed_chunk: int | None = None,
    ) -> None:
        super().__init__(message)
        self.lane = lane
        self.last_completed_chunk = last_completed_chunk
