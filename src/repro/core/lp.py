"""Linear-program formulation over a region (or grid) partition.

For one relation with partition ``r_1 .. r_n`` and cardinality constraints
``(P_1, k_1) .. (P_m, k_m)`` the LP is

    Σ_{r_j satisfies P_i} x_j  =  k_i        for every constraint i
    Σ_j x_j                    =  |R|        (row-count constraint)
    x_j ≥ 0

Because each region either entirely satisfies or entirely misses each
predicate (regions are atoms of the predicate algebra), membership reduces to
the region's signature and the constraint matrix is 0/1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np
from numpy.typing import NDArray

from .regions import Region

__all__ = ["LPProblem", "build_lp"]


@dataclass
class LPProblem:
    """A per-relation cardinality LP (equality constraints, x ≥ 0)."""

    relation: str
    matrix: NDArray[Any]                 # shape (m, n), 0/1 entries
    rhs: NDArray[Any]                    # shape (m,)
    constraint_labels: list[str]       # provenance of each row (query#operator)
    region_count: int
    row_count_index: int | None = None # which row is the total-row-count row
    metadata: dict = field(default_factory=dict)

    @property
    def num_variables(self) -> int:
        return self.region_count

    @property
    def num_constraints(self) -> int:
        return int(self.matrix.shape[0])

    def residuals(self, solution: NDArray[Any]) -> NDArray[Any]:
        """Signed residual ``A x − b`` of a candidate solution."""
        return self.matrix @ np.asarray(solution, dtype=np.float64) - self.rhs

    def relative_errors(self, solution: NDArray[Any]) -> NDArray[Any]:
        """Per-constraint relative error |A x − b| / max(b, 1)."""
        residual = np.abs(self.residuals(solution))
        scale = np.maximum(self.rhs, 1.0)
        return residual / scale

    def equivalent_to(self, other: "LPProblem") -> bool:
        """Structural equality of two LPs (matrix, right-hand side, labels).

        The incremental pipeline reuses a previous relation's LP solution when
        the re-derived problem is provably the one already solved; this check
        is the ground truth that the cheap signature comparison approximates.
        The incremental regression tests use it to assert that a warm-started
        extend derives exactly the problem a from-scratch union build would.
        """
        return (
            self.relation == other.relation
            and self.row_count_index == other.row_count_index
            and self.constraint_labels == other.constraint_labels
            and self.matrix.shape == other.matrix.shape
            and bool(np.array_equal(self.matrix, other.matrix))
            and bool(np.array_equal(self.rhs, other.rhs))
        )

    def describe(self) -> str:
        return (
            f"LP[{self.relation}]: {self.num_variables} variables, "
            f"{self.num_constraints} constraints"
        )


def build_lp(
    relation: str,
    regions: Sequence[Region],
    cardinalities: Sequence[int],
    constraint_labels: Sequence[str] | None = None,
    row_count: int | None = None,
) -> LPProblem:
    """Assemble the per-relation LP from a partition and its constraints.

    ``cardinalities[i]`` is the annotated count of the i-th predicate used to
    build the partition (so region ``r`` contributes to row ``i`` exactly when
    ``i ∈ r.signature``).  When ``row_count`` is given an extra all-ones row
    pins the relation's total size.
    """
    num_regions = len(regions)
    num_constraints = len(cardinalities)
    labels = list(constraint_labels) if constraint_labels is not None else [
        f"constraint_{i}" for i in range(num_constraints)
    ]
    if len(labels) != num_constraints:
        raise ValueError("constraint_labels length must match cardinalities")

    rows = num_constraints + (1 if row_count is not None else 0)
    matrix = np.zeros((rows, num_regions), dtype=np.float64)
    rhs = np.zeros(rows, dtype=np.float64)
    rhs[:num_constraints] = np.asarray(cardinalities, dtype=np.float64)

    # One pass over the regions instead of one pass per constraint: a region's
    # signature lists exactly the predicate indices it satisfies (indices of
    # tracking-only partition predicates exceed the constraint count and are
    # dropped), so each region fills its whole matrix column at once.
    for region in regions:
        members = [index for index in region.signature if index < num_constraints]
        if members:
            matrix[members, region.index] = 1.0

    row_count_index: int | None = None
    if row_count is not None:
        row_count_index = num_constraints
        matrix[row_count_index, :] = 1.0
        rhs[row_count_index] = float(row_count)
        labels = labels + ["row_count"]

    return LPProblem(
        relation=relation,
        matrix=matrix,
        rhs=rhs,
        constraint_labels=labels,
        region_count=num_regions,
        row_count_index=row_count_index,
    )
