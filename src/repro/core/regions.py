"""Region partitioning — HYDRA's LP variable-minimising space decomposition.

Given the (grounded) predicates that the workload imposes on one relation,
the relation's value space is partitioned into **regions**: maximal sets of
points that satisfy exactly the same subset of predicates (the atoms of the
Boolean algebra the predicates generate).  One LP variable per non-empty
region is the minimum any consistent formulation can use, which is the paper's
first novelty and the source of the orders-of-magnitude reduction over the
grid partitioning of DataSynth (reproduced in :mod:`repro.core.grid`).

Regions are built incrementally.  The space starts as a single region (the
relation's domain box); every predicate splits each existing region into the
part inside the predicate and the part outside, both represented as unions of
disjoint hyper-boxes.  Empty parts — including parts that contain no integer
point for discrete columns — are discarded immediately, so the number of
regions tracks the number of *realisable* predicate signatures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..sql.predicates import BoxCondition, Interval, IntervalSet
from .errors import RegionExplosionError

__all__ = [
    "Region",
    "PartitionCheckpoint",
    "RegionPartitioner",
    "box_is_empty",
    "box_difference",
]


def _condition_is_empty(intervals: IntervalSet, discrete: bool) -> bool:
    """True if no admissible point exists in the interval set."""
    if intervals.is_empty:
        return True
    if not discrete:
        return False
    for interval in intervals:
        if math.isinf(interval.low) or math.isinf(interval.high):
            return False
        if interval.count_integers() > 0:
            return False
    return True


def box_is_empty(box: BoxCondition, discrete: Mapping[str, bool] | None = None) -> bool:
    """True if the box contains no admissible point."""
    if not box.satisfiable:
        return True
    for column, intervals in box.conditions.items():
        is_discrete = True if discrete is None else discrete.get(column, True)
        if _condition_is_empty(intervals, is_discrete):
            return True
    return False


def box_difference(box: BoxCondition, cut: BoxCondition) -> list[BoxCondition]:
    """Decompose ``box \\ cut`` into disjoint boxes.

    Standard column-by-column decomposition: for the k-th constrained column
    of ``cut``, emit the part of ``box`` that lies outside the cut on that
    column while being inside the cut on all previously processed columns.
    """
    if not box.satisfiable:
        return []
    if not cut.satisfiable:
        # Subtracting the falsum box removes nothing; iterating its (empty
        # or vestigial) per-column conditions would instead drop ``box``.
        return [box]
    pieces: list[BoxCondition] = []
    current = box
    for column in sorted(cut.conditions):
        box_intervals = current.condition_for(column)
        cut_intervals = cut.conditions[column]
        outside = box_intervals.subtract(cut_intervals)
        if not outside.is_empty:
            piece_conditions = dict(current.conditions)
            piece_conditions[column] = outside
            pieces.append(BoxCondition(piece_conditions))
        inside = box_intervals.intersect(cut_intervals)
        if inside.is_empty:
            return pieces
        next_conditions = dict(current.conditions)
        next_conditions[column] = inside
        current = BoxCondition(next_conditions)
    return pieces


@dataclass(frozen=True)
class Region:
    """One region: a predicate signature and the boxes that realise it."""

    index: int
    signature: frozenset[int]
    boxes: tuple[BoxCondition, ...]

    def satisfies(self, constraint_index: int) -> bool:
        """Whether every point of the region satisfies the given predicate."""
        return constraint_index in self.signature

    def contained_in(self, box: BoxCondition) -> bool:
        """Exact containment test of the region inside an arbitrary box."""
        if not box.satisfiable:
            # The falsum box contains nothing; its (empty) per-column
            # conditions must not read as unconstrained.
            return False
        for piece in self.boxes:
            for column, required in box.conditions.items():
                piece_intervals = piece.condition_for(column)
                if not required.contains_set(piece_intervals):
                    return False
        return True

    def overlaps(self, box: BoxCondition) -> bool:
        """Whether any part of the region intersects the box."""
        for piece in self.boxes:
            intersection = piece.intersect(box)
            if not box_is_empty(intersection):
                return True
        return False

    def representative_box(self) -> BoxCondition:
        """The first box of the region (used to pick representative values)."""
        return self.boxes[0]

    def columns(self) -> set[str]:
        names: set[str] = set()
        for piece in self.boxes:
            names |= piece.columns()
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        signature = ",".join(str(i) for i in sorted(self.signature))
        return f"Region(#{self.index} sig={{{signature}}} boxes={len(self.boxes)})"


@dataclass
class _MutableRegion:
    signature: set[int]
    boxes: list[BoxCondition]


@dataclass(frozen=True)
class PartitionCheckpoint:
    """Resumable partitioning state after consuming a prefix of predicates.

    The incremental-maintenance pipeline stores the checkpoint of every
    relation's partition so that a delta workload which *appends* predicate
    boxes can resume the splitting exactly where the previous build stopped
    (:meth:`RegionPartitioner.resume`) instead of re-splitting from the
    domain box.  Resuming is bit-identical to a fresh
    :meth:`RegionPartitioner.partition` over the concatenated box sequence,
    because partitioning consumes boxes strictly left to right.
    """

    boxes: tuple[BoxCondition, ...]
    regions: tuple[_MutableRegion, ...]

    @property
    def num_boxes(self) -> int:
        return len(self.boxes)

    def is_prefix_of(self, boxes: Sequence[BoxCondition]) -> bool:
        """Whether this checkpoint covers a prefix of ``boxes``."""
        if len(self.boxes) > len(boxes):
            return False
        return all(mine == theirs for mine, theirs in zip(self.boxes, boxes))


@dataclass
class RegionPartitioner:
    """Builds the region partition of one relation's value space.

    Parameters
    ----------
    discrete:
        Map ``column -> bool`` marking integer-valued columns (used for the
        no-integer-point emptiness check).
    domain:
        Optional bounding box of the relation's value space (for instance the
        observed min/max of each column from the client metadata, and
        ``[0, |referenced|)`` for foreign-key columns).  Constraining the
        initial region to the domain keeps representatives realisable and is
        also how referential bounds enter the formulation.
    max_regions:
        Safety budget; exceeding it raises :class:`RegionExplosionError`
        rather than silently building an intractable LP.
    """

    discrete: Mapping[str, bool] | None = None
    domain: BoxCondition | None = None
    max_regions: int = 200_000
    last_boxes_built: int = field(default=0, init=False)
    last_checkpoint: PartitionCheckpoint | None = field(default=None, init=False)

    def partition(self, constraint_boxes: Sequence[BoxCondition]) -> list[Region]:
        """Partition the space induced by the given predicate boxes.

        ``last_checkpoint`` afterwards holds the resumable splitting state so
        a later call can :meth:`resume` with appended boxes.
        """
        initial_box = self.domain if self.domain is not None else BoxCondition({})
        regions: list[_MutableRegion] = [
            _MutableRegion(signature=set(), boxes=[initial_box])
        ]
        regions = self._consume(regions, constraint_boxes, 0, len(constraint_boxes))
        self.last_checkpoint = PartitionCheckpoint(
            boxes=tuple(constraint_boxes), regions=tuple(regions)
        )
        return self._finalize(regions)

    def advance(
        self,
        checkpoint: PartitionCheckpoint | None,
        boxes: Sequence[BoxCondition],
    ) -> PartitionCheckpoint:
        """Consume boxes and return the checkpoint, without finalising regions.

        The checkpoint-only sibling of :meth:`partition`/:meth:`resume` for
        callers that need an *intermediate* resumable state (the incremental
        pipeline checkpoints the grounded/tracking boundary of every
        relation): it skips the sort-and-materialise finalisation, which
        would be thrown away anyway.  ``checkpoint=None`` starts from the
        domain box.
        """
        if checkpoint is None:
            initial_box = self.domain if self.domain is not None else BoxCondition({})
            state: list[_MutableRegion] = [
                _MutableRegion(signature=set(), boxes=[initial_box])
            ]
            consumed: tuple[BoxCondition, ...] = ()
        else:
            state = list(checkpoint.regions)
            consumed = checkpoint.boxes
        total = len(consumed) + len(boxes)
        state = self._consume(state, boxes, len(consumed), total)
        self.last_checkpoint = PartitionCheckpoint(
            boxes=consumed + tuple(boxes), regions=tuple(state)
        )
        return self.last_checkpoint

    def resume(
        self,
        checkpoint: PartitionCheckpoint,
        appended_boxes: Sequence[BoxCondition],
    ) -> list[Region]:
        """Continue a checkpointed partition with appended predicate boxes.

        Bit-identical to ``partition(checkpoint.boxes + appended_boxes)``:
        splitting consumes boxes strictly left to right, so resuming from the
        stored mutable state replays exactly the suffix of that computation.
        The checkpoint itself is never mutated and stays valid for further
        resumes.
        """
        total = checkpoint.num_boxes + len(appended_boxes)
        regions = self._consume(
            list(checkpoint.regions), appended_boxes, checkpoint.num_boxes, total
        )
        self.last_checkpoint = PartitionCheckpoint(
            boxes=checkpoint.boxes + tuple(appended_boxes), regions=tuple(regions)
        )
        return self._finalize(regions)

    # -- internals --------------------------------------------------------

    def _consume(
        self,
        regions: list[_MutableRegion],
        boxes: Sequence[BoxCondition],
        start_index: int,
        total_boxes: int,
    ) -> list[_MutableRegion]:
        for offset, constraint_box in enumerate(boxes):
            regions = self._split(regions, start_index + offset, constraint_box)
            if len(regions) > self.max_regions:
                raise RegionExplosionError(
                    f"region partitioning exceeded {self.max_regions} regions "
                    f"after {start_index + offset + 1} of {total_boxes} predicates"
                )
        return regions

    def _finalize(self, regions: list[_MutableRegion]) -> list[Region]:
        self.last_boxes_built = sum(len(region.boxes) for region in regions)
        ordered = sorted(regions, key=lambda region: tuple(sorted(region.signature)))
        return [
            Region(
                index=i,
                signature=frozenset(region.signature),
                boxes=tuple(region.boxes),
            )
            for i, region in enumerate(ordered)
        ]

    def _split(
        self,
        regions: list[_MutableRegion],
        constraint_index: int,
        constraint_box: BoxCondition,
    ) -> list[_MutableRegion]:
        result: list[_MutableRegion] = []
        for region in regions:
            inside: list[BoxCondition] = []
            outside: list[BoxCondition] = []
            for box in region.boxes:
                intersection = box.intersect(constraint_box)
                if not box_is_empty(intersection, self.discrete):
                    inside.append(intersection)
                for piece in box_difference(box, constraint_box):
                    if not box_is_empty(piece, self.discrete):
                        outside.append(piece)
            if inside:
                result.append(
                    _MutableRegion(signature=region.signature | {constraint_index}, boxes=inside)
                )
            if outside:
                result.append(
                    _MutableRegion(signature=set(region.signature), boxes=outside)
                )
        return result


def regions_satisfying(regions: Iterable[Region], box: BoxCondition) -> list[Region]:
    """Regions entirely contained in an arbitrary box condition.

    When ``box`` is (equal to) one of the predicates the partition was built
    from, containment coincides with signature membership and the result is
    exact; the method is also used for borrowed predicates, which the
    pipeline registers as partition predicates precisely so this holds.
    """
    return [region for region in regions if region.contained_in(box)]


def domain_box_from_bounds(bounds: Mapping[str, tuple[float, float]]) -> BoxCondition:
    """Convenience: build a domain box from per-column ``(low, high)`` bounds."""
    return BoxCondition(
        {column: IntervalSet([Interval(low, high)]) for column, (low, high) in bounds.items()}
    )
