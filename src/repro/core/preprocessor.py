"""Workload decomposition into per-relation cardinality constraints.

This is the "Preprocessor" box of the paper's architecture (Figure 2), sourced
conceptually from DataSynth: it makes every relation independently solvable by
translating each annotated operator edge of every AQP into a constraint on a
*single* relation.

The key observation (valid for the SPJ / key-foreign-key workloads HYDRA
targets) is that a join ``R ⋈_{R.fk = S.pk} S`` does not multiply the rows of
the referencing side: each R-tuple either finds its unique S partner or does
not.  Hence the annotated output of the join is a constraint on the *anchor*
relation alone — the relation whose rows the intermediate result corresponds
to one-for-one (the fact table of a star query, the innermost fact of a
snowflake chain).  Conditions contributed by joined dimensions are attached to
the anchor's predicate as nested *referenced predicates* along the foreign-key
path (``lineitem → orders → customer``), and stay symbolic until the
referenced relations have been summarised (see
:mod:`repro.core.constraints`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..catalog.metadata import DatabaseMetadata
from ..catalog.schema import Schema, Table
from ..plans.aqp import AnnotatedQueryPlan
from ..plans.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from ..sql.predicates import BoxCondition
from ..sql.query import DisjunctiveJoinCondition
from .constraints import (
    CardinalityConstraint,
    ReferencedPredicate,
    RelationConstraints,
    SymbolicPredicate,
)
from .errors import DecompositionError

__all__ = ["WorkloadConstraints", "decompose_workload", "decompose_plan"]


@dataclass
class WorkloadConstraints:
    """Per-relation constraint sets for a whole workload."""

    schema: Schema
    relations: dict[str, RelationConstraints] = field(default_factory=dict)

    def for_relation(self, name: str) -> RelationConstraints:
        if name not in self.relations:
            raise KeyError(f"no constraints collected for relation {name!r}")
        return self.relations[name]

    def total_constraints(self) -> int:
        return sum(len(rel.constraints) for rel in self.relations.values())

    def constrained_relations(self) -> list[str]:
        return [
            name
            for name, relation in self.relations.items()
            if relation.constraints
        ]


@dataclass
class _TableNode:
    """Mutable per-table state while walking one plan.

    ``box`` accumulates the table's own filter conditions; ``children`` maps a
    foreign-key column of this table to the node of the referenced table that
    has been joined below it.
    """

    table: str
    box: BoxCondition
    children: dict[str, "_TableNode"] = field(default_factory=dict)

    def to_symbolic(self) -> SymbolicPredicate:
        references = {
            fk_column: ReferencedPredicate(table=child.table, predicate=child.to_symbolic())
            for fk_column, child in self.children.items()
        }
        return SymbolicPredicate.make(box=self.box, references=references)


@dataclass
class _SubPlanState:
    """Result of decomposing a sub-plan.

    ``anchor`` is the table whose rows the sub-plan output corresponds 1:1 to;
    ``nodes`` indexes every base table of the sub-plan by name.
    """

    anchor: _TableNode
    nodes: dict[str, _TableNode]


def _discrete_map(table: Table) -> dict[str, bool]:
    return {column.name: column.dtype.is_discrete for column in table.columns}


def decompose_workload(
    aqps: Iterable[AnnotatedQueryPlan],
    metadata: DatabaseMetadata,
) -> WorkloadConstraints:
    """Decompose every AQP of a workload into per-relation constraints.

    The returned :class:`WorkloadConstraints` contains an entry for *every*
    table of the schema (unconstrained tables simply carry their row count,
    so the summary generator can still regenerate them at the right size).
    """
    schema = metadata.schema
    workload = WorkloadConstraints(schema=schema)
    for table in schema:
        workload.relations[table.name] = RelationConstraints(
            relation=table.name,
            row_count=metadata.row_count(table.name),
        )

    for aqp in aqps:
        decompose_plan(aqp, workload)
    return workload


def decompose_plan(aqp: AnnotatedQueryPlan, workload: WorkloadConstraints) -> None:
    """Decompose one AQP, adding its constraints to ``workload`` in place."""
    _walk(aqp.plan, aqp, workload)


def _walk(
    node: PlanNode, aqp: AnnotatedQueryPlan, workload: WorkloadConstraints
) -> _SubPlanState:
    schema = workload.schema

    if isinstance(node, ScanNode):
        table_node = _TableNode(table=node.table, box=BoxCondition({}))
        state = _SubPlanState(anchor=table_node, nodes={node.table: table_node})
        _emit(node, state, aqp, workload)
        return state

    if isinstance(node, FilterNode):
        child = _walk(node.child, aqp, workload)
        if node.table not in child.nodes:
            raise DecompositionError(
                f"filter on {node.table!r} sits above a sub-plan that does not "
                f"contain that table (query {aqp.name!r})"
            )
        table = schema.table(node.table)
        try:
            box = node.predicate.to_box(_discrete_map(table))
        except ValueError as exc:
            # Box normalisation rejects e.g. multi-column disjunctions with a
            # plain ValueError; surface it under the documented contract.
            raise DecompositionError(
                f"filter on {node.table!r} cannot be normalised to a box "
                f"(query {aqp.name!r}): {exc}"
            ) from exc
        target = child.nodes[node.table]
        target.box = target.box.intersect(box)
        _emit(node, child, aqp, workload)
        return child

    if isinstance(node, JoinNode):
        left = _walk(node.left, aqp, workload)
        right = _walk(node.right, aqp, workload)
        state = _join_state(node, left, right, schema, aqp)
        _emit(node, state, aqp, workload)
        return state

    if isinstance(node, (ProjectNode, AggregateNode)):
        child = _walk(node.child, aqp, workload)
        # Projection and COUNT(*) do not change which tuples survive, so they
        # add no volumetric constraint beyond their child's.
        return child

    raise DecompositionError(f"unsupported plan node {type(node).__name__}")


def _join_state(
    node: JoinNode,
    left: _SubPlanState,
    right: _SubPlanState,
    schema: Schema,
    aqp: AnnotatedQueryPlan,
) -> _SubPlanState:
    condition = node.condition
    if isinstance(condition, DisjunctiveJoinCondition):
        raise DecompositionError(
            f"join {condition.as_predicate()} in query {aqp.name!r} is disjunctive; "
            "the LP decomposition only supports key/foreign-key equi-joins"
        )

    def orientation() -> tuple[str, str, str, str] | None:
        """Return (fk_table, fk_column, ref_table, ref_column) if key/FK join."""
        left_fk = schema.table(condition.left_table).foreign_key_for(condition.left_column)
        if (
            left_fk is not None
            and left_fk.ref_table == condition.right_table
            and left_fk.ref_column == condition.right_column
        ):
            return (
                condition.left_table,
                condition.left_column,
                condition.right_table,
                condition.right_column,
            )
        right_fk = schema.table(condition.right_table).foreign_key_for(condition.right_column)
        if (
            right_fk is not None
            and right_fk.ref_table == condition.left_table
            and right_fk.ref_column == condition.left_column
        ):
            return (
                condition.right_table,
                condition.right_column,
                condition.left_table,
                condition.left_column,
            )
        return None

    oriented = orientation()
    if oriented is None:
        raise DecompositionError(
            f"join {condition!r} in query {aqp.name!r} is not along a declared "
            "key/foreign-key edge"
        )
    fk_table, fk_column, ref_table, _ref_column = oriented

    if fk_table in left.nodes and ref_table in right.nodes:
        referencing_state, referenced_state = left, right
    elif fk_table in right.nodes and ref_table in left.nodes:
        referencing_state, referenced_state = right, left
    else:
        raise DecompositionError(
            f"join {condition!r} in query {aqp.name!r} does not connect the two "
            f"sub-plans (tables {sorted(left.nodes)} and {sorted(right.nodes)})"
        )

    referenced_anchor = referenced_state.anchor
    if referenced_anchor.table != ref_table:
        raise DecompositionError(
            f"join {condition!r} in query {aqp.name!r} attaches {ref_table!r}, but the "
            f"referenced sub-plan is anchored at {referenced_anchor.table!r}; such plans "
            "multiply anchor rows and are outside the supported key/FK class"
        )

    referencing_node = referencing_state.nodes[fk_table]
    if fk_column in referencing_node.children:
        raise DecompositionError(
            f"foreign-key column {fk_table}.{fk_column} is joined twice in query {aqp.name!r}"
        )
    referencing_node.children[fk_column] = referenced_anchor

    merged_nodes = dict(referencing_state.nodes)
    overlap = set(merged_nodes) & set(referenced_state.nodes)
    if overlap:
        raise DecompositionError(
            f"query {aqp.name!r} joins table(s) {sorted(overlap)} more than once; "
            "self-joins are outside the supported query class"
        )
    merged_nodes.update(referenced_state.nodes)
    return _SubPlanState(anchor=referencing_state.anchor, nodes=merged_nodes)


def _emit(
    node: PlanNode,
    state: _SubPlanState,
    aqp: AnnotatedQueryPlan,
    workload: WorkloadConstraints,
) -> None:
    """Record the node's annotation as a constraint on the anchor relation."""
    if node.cardinality is None:
        return
    anchor = state.anchor
    relation = workload.relations[anchor.table]
    predicate = anchor.to_symbolic()
    relation.add(
        CardinalityConstraint(
            relation=anchor.table,
            predicate=predicate,
            cardinality=int(node.cardinality),
            source=f"{aqp.name}#{node.operator.lower()}",
        )
    )
    _register_tracking(predicate, workload)


def _register_tracking(predicate: SymbolicPredicate, workload: WorkloadConstraints) -> None:
    """Register every nested (borrowed) predicate on its own relation.

    The referenced relation needs these as partition predicates so that,
    once aligned, the borrowed condition maps to whole primary-key blocks.
    """
    for _fk_column, referenced in predicate.references:
        workload.relations[referenced.table].add_tracking(referenced.predicate)
        _register_tracking(referenced.predicate, workload)
