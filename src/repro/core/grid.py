"""Grid partitioning — the DataSynth baseline HYDRA improves upon.

DataSynth (Arasu et al., SIGMOD 2011) formulates the per-relation LP over the
cells of a *grid*: every constrained column's domain is cut at every constant
appearing in any predicate, and one variable is created per cell of the cross
product of those per-column cuts.  The variable count is therefore the product
of per-column interval counts and grows multiplicatively with the number of
constrained columns — the combinatorial explosion HYDRA's region partitioning
avoids.  This module reproduces the baseline both as a *count* (for the E3
complexity comparison, where enumerating the cells would be intractable) and
as an actual partition (for small cases, where tests verify that grid and
region formulations admit the same solutions).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..sql.predicates import BoxCondition, Interval, IntervalSet
from .errors import RegionExplosionError
from .regions import Region, box_is_empty

__all__ = ["GridPartitioner", "grid_variable_count", "column_cut_points"]


def column_cut_points(
    constraint_boxes: Sequence[BoxCondition],
) -> dict[str, list[float]]:
    """All finite interval endpoints per column across the predicates."""
    cuts: dict[str, set[float]] = {}
    for box in constraint_boxes:
        for column, intervals in box.conditions.items():
            bucket = cuts.setdefault(column, set())
            for interval in intervals:
                if not math.isinf(interval.low):
                    bucket.add(interval.low)
                if not math.isinf(interval.high):
                    bucket.add(interval.high)
    return {column: sorted(points) for column, points in cuts.items()}


def _atomic_intervals(
    points: Sequence[float], domain: IntervalSet | None
) -> list[Interval]:
    """The atomic intervals induced by cut points (restricted to a domain)."""
    if domain is None or domain.is_everything or domain.is_empty:
        low, high = -math.inf, math.inf
    else:
        low, high = domain.bounds()
    boundaries = [low] + [p for p in points if low < p < high] + [high]
    intervals = []
    for start, end in zip(boundaries, boundaries[1:]):
        interval = Interval(start, end)
        if not interval.is_empty:
            intervals.append(interval)
    return intervals


def grid_variable_count(
    constraint_boxes: Sequence[BoxCondition],
    domain: BoxCondition | None = None,
) -> int:
    """Number of LP variables the grid formulation would create.

    This is the headline metric of experiment E3; it is computed without
    materialising the cells so it stays cheap even when the answer is in the
    billions.
    """
    cuts = column_cut_points(constraint_boxes)
    if not cuts:
        return 1
    total = 1
    for column, points in cuts.items():
        column_domain = domain.condition_for(column) if domain is not None else None
        total *= max(1, len(_atomic_intervals(points, column_domain)))
    return total


@dataclass
class GridPartitioner:
    """Materialises the grid cells (small problems only).

    The cells are returned as :class:`~repro.core.regions.Region` objects so
    the same LP builder and solver can run on either formulation; the
    signature of a cell lists the predicates that fully contain it.
    """

    discrete: Mapping[str, bool] | None = None
    domain: BoxCondition | None = None
    max_cells: int = 100_000

    def partition(self, constraint_boxes: Sequence[BoxCondition]) -> list[Region]:
        expected = grid_variable_count(constraint_boxes, self.domain)
        if expected > self.max_cells:
            raise RegionExplosionError(
                f"grid partitioning would create {expected} cells "
                f"(budget {self.max_cells}); use the region formulation"
            )
        cuts = column_cut_points(constraint_boxes)
        if not cuts:
            initial = self.domain if self.domain is not None else BoxCondition({})
            return [Region(index=0, signature=frozenset(), boxes=(initial,))]

        columns = sorted(cuts)
        per_column: list[list[Interval]] = []
        for column in columns:
            column_domain = (
                self.domain.condition_for(column) if self.domain is not None else None
            )
            per_column.append(_atomic_intervals(cuts[column], column_domain))

        regions: list[Region] = []
        index = 0
        for combo in itertools.product(*per_column):
            conditions = {
                column: IntervalSet([interval])
                for column, interval in zip(columns, combo)
            }
            if self.domain is not None:
                cell = self.domain.intersect(BoxCondition(conditions))
            else:
                cell = BoxCondition(conditions)
            if box_is_empty(cell, self.discrete):
                continue
            signature = frozenset(
                i
                for i, constraint_box in enumerate(constraint_boxes)
                if _cell_inside(cell, constraint_box)
            )
            regions.append(Region(index=index, signature=signature, boxes=(cell,)))
            index += 1
        return regions


def _cell_inside(cell: BoxCondition, constraint_box: BoxCondition) -> bool:
    if not constraint_box.satisfiable:
        # The falsum box contains no cell; its (empty) per-column conditions
        # must not read as unconstrained.
        return False
    for column, required in constraint_box.conditions.items():
        if not required.contains_set(cell.condition_for(column)):
            return False
    return True
