"""Referential-integrity post-processing of a database summary.

The paper's architecture runs a post-processing step after per-relation
solving "to ensure that referential constraints are not violated across the
solutions", accepting that it "may incur minor additive errors".  In this
reproduction the deterministic alignment already bounds FK reference intervals
by the referenced relation's regenerated size, so in the common case this pass
finds nothing to fix; it exists for the cases where it must act:

* injected what-if scenarios whose referenced relation shrank below the
  interval a referencing region was aligned to;
* summaries edited or assembled by hand (scenario construction).

Every repair is recorded so the quality report can attribute the resulting
additive error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..sql.predicates import Interval, IntervalSet
from .summary import DatabaseSummary, FKReference

__all__ = ["ReferentialRepair", "ReferentialReport", "enforce_referential_integrity"]


@dataclass(frozen=True)
class ReferentialRepair:
    """One FK reference that had to be clamped or remapped."""

    table: str
    summary_row: int
    column: str
    ref_table: str
    affected_tuples: int
    action: str  # "clamped" or "remapped"


@dataclass
class ReferentialReport:
    """All repairs performed by one post-processing pass."""

    repairs: list[ReferentialRepair] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        return not self.repairs

    @property
    def affected_tuples(self) -> int:
        return sum(repair.affected_tuples for repair in self.repairs)

    def describe(self) -> str:
        if self.is_clean:
            return "referential integrity: no repairs needed"
        lines = [f"referential integrity: {len(self.repairs)} repairs"]
        for repair in self.repairs:
            lines.append(
                f"  {repair.table}[row {repair.summary_row}].{repair.column} -> "
                f"{repair.ref_table}: {repair.action} ({repair.affected_tuples} tuples)"
            )
        return "\n".join(lines)


def enforce_referential_integrity(
    summary: DatabaseSummary, only: Iterable[str] | None = None
) -> ReferentialReport:
    """Clamp every FK reference interval to the referenced relation's size.

    Modifies ``summary`` in place and returns the list of repairs.  A
    reference whose intervals become empty after clamping is remapped to the
    full referenced pk range — the "minor additive error" case, since those
    tuples may now join with partners outside the intended predicate region.

    ``only`` restricts the pass to the named relations.  Incremental
    maintenance uses this for the relations it re-solved: the relations it
    left untouched *share* their row objects with the base summary, were
    already enforced by the base build, and reference totals that cannot
    have changed (the LP's row-count row is hard, and a row-count change
    marks every referencing relation as touched) — so skipping them both
    avoids redundant work and guarantees the shared base rows are never
    mutated by a later extend.
    """
    report = ReferentialReport()
    names = set(summary.relations) if only is None else set(only)
    for table_name, relation in summary.relations.items():
        if table_name not in names:
            continue
        for row_index, row in enumerate(relation.rows):
            for column, reference in list(row.fk_refs.items()):
                ref_total = summary.row_count(reference.ref_table)
                bound = IntervalSet([Interval(0.0, float(ref_total))])
                clamped = reference.intervals.intersect(bound)
                if clamped == reference.intervals:
                    continue
                if not clamped.is_empty:
                    row.fk_refs[column] = FKReference(
                        ref_table=reference.ref_table, intervals=clamped
                    )
                    action = "clamped"
                else:
                    row.fk_refs[column] = FKReference(
                        ref_table=reference.ref_table, intervals=bound
                    )
                    action = "remapped"
                report.repairs.append(
                    ReferentialRepair(
                        table=table_name,
                        summary_row=row_index,
                        column=column,
                        ref_table=reference.ref_table,
                        affected_tuples=row.count,
                        action=action,
                    )
                )
    return report
