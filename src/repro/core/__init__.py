"""HYDRA core: constraint decomposition, region-partitioned LPs, deterministic
alignment, the database summary and dynamic tuple generation."""

from .alignment import AlignedRelation, DeterministicAligner
from .constraints import (
    CardinalityConstraint,
    ReferencedPredicate,
    RelationConstraints,
    SymbolicPredicate,
)
from .errors import (
    DecompositionError,
    HydraError,
    InfeasibleConstraintsError,
    RegionExplosionError,
    SolverError,
    SummaryError,
)
from .grid import GridPartitioner, grid_variable_count
from .lp import LPProblem, build_lp
from .pipeline import Hydra, HydraBuildResult, RelationBuildInfo, SummaryBuildReport
from .preprocessor import WorkloadConstraints, decompose_plan, decompose_workload
from .refint import ReferentialReport, enforce_referential_integrity
from .regions import Region, RegionPartitioner, box_difference, box_is_empty
from .sampling import SamplingAligner
from .scenario import (
    FeasibilityReport,
    Scenario,
    build_scenario,
    check_feasibility,
    exabyte_extrapolation,
    scale_metadata,
    scale_workload,
)
from .solver import LPSolution, LPSolver, round_preserving_total
from .summary import DatabaseSummary, FKReference, RelationSummary, SummaryRow
from .tuplegen import SummaryDatabaseFactory, TupleGenerator

__all__ = [
    "AlignedRelation",
    "CardinalityConstraint",
    "DatabaseSummary",
    "DecompositionError",
    "DeterministicAligner",
    "FKReference",
    "FeasibilityReport",
    "GridPartitioner",
    "Hydra",
    "HydraBuildResult",
    "HydraError",
    "InfeasibleConstraintsError",
    "LPProblem",
    "LPSolution",
    "LPSolver",
    "ReferencedPredicate",
    "ReferentialReport",
    "Region",
    "RegionExplosionError",
    "RegionPartitioner",
    "RelationBuildInfo",
    "RelationConstraints",
    "RelationSummary",
    "SamplingAligner",
    "Scenario",
    "SolverError",
    "SummaryBuildReport",
    "SummaryDatabaseFactory",
    "SummaryError",
    "SummaryRow",
    "SymbolicPredicate",
    "TupleGenerator",
    "WorkloadConstraints",
    "box_difference",
    "box_is_empty",
    "build_lp",
    "build_scenario",
    "check_feasibility",
    "decompose_plan",
    "decompose_workload",
    "enforce_referential_integrity",
    "exabyte_extrapolation",
    "grid_variable_count",
    "round_preserving_total",
    "scale_metadata",
    "scale_workload",
]
