"""On-demand tuple generation from a relation summary.

The Tuple Generator is what makes the regenerated database *dataless*: row
``i`` of any relation can be produced in ``O(log #summary-rows)`` without
generating its predecessors, so the scan operator can stream tuples during
query execution (the paper's ``datagen`` feature) and arbitrary-size databases
never need to be materialised.

Generation rules (matching the paper's Figure 4 / Table 1):

* the primary key is the auto-number ``i`` itself;
* every non-key attribute takes the representative value stored in the
  summary row covering ``i``;
* every foreign-key attribute takes the ``offset``-th admissible referenced
  pk index, round-robin over the row's reference intervals, where ``offset``
  is the tuple's position within its summary row — this deterministic spread
  preserves the borrowed join cardinalities exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np
from numpy.typing import NDArray

from ..catalog.schema import Table
from ..sql.predicates import BoxCondition, columns_with_dependencies
from ..telemetry.session import add_counter
from .errors import SummaryError
from .summary import DatabaseSummary, RelationSummary

__all__ = ["TupleGenerator", "SummaryDatabaseFactory", "first_owned_batch_start"]


def first_owned_batch_start(segment_start: int, lo: int, batch_size: int) -> int:
    """First segment-anchored batch start at or after ``lo``.

    Batches of a summary segment are anchored at ``segment_start`` and a
    batch is *owned* by the shard window containing its start.  This single
    rule is shared by the serial iterator's ``offsets`` window and the shard
    planner's work estimates (:mod:`repro.parallel.sharding`) so the two can
    never drift apart.
    """
    if lo <= segment_start:
        return segment_start
    return segment_start + ((lo - segment_start + batch_size - 1) // batch_size) * batch_size


@dataclass
class TupleGenerator:
    """Row source regenerating one relation from its summary."""

    table: Table
    summary: RelationSummary

    def __post_init__(self) -> None:
        if self.table.name != self.summary.table:
            raise SummaryError(
                f"summary is for {self.summary.table!r}, table is {self.table.name!r}"
            )

    # -- provider protocol -------------------------------------------------

    @property
    def row_count(self) -> int:
        return self.summary.total_rows

    @property
    def column_names(self) -> list[str]:
        return self.table.column_names

    def row(self, index: int) -> tuple:
        """Generate the ``index``-th tuple (encoded values, schema order)."""
        position, offset = self.summary.locate(index)
        summary_row = self.summary.rows[position]
        values = []
        for column in self.table.columns:
            if column.name == self.table.primary_key:
                values.append(index)
            elif column.name in summary_row.fk_refs:
                values.append(summary_row.fk_refs[column.name].kth_target(offset))
            else:
                values.append(summary_row.values.get(column.name, 0.0))
        return tuple(values)

    def decoded_row(self, index: int) -> tuple[Any, ...]:
        """Generate row ``index`` with values decoded to external types."""
        encoded = self.row(index)
        return tuple(
            column.dtype.decode(value)
            for column, value in zip(self.table.columns, encoded)
        )

    # -- vectorised block generation ---------------------------------------

    def generate_block(
        self, start: int, count: int, columns: Sequence[str] | None = None
    ) -> dict[str, NDArray[Any]]:
        """Generate ``count`` consecutive rows starting at ``start``.

        Returns a dict of column arrays (encoded values).  The block is
        assembled summary-row segment by summary-row segment, so the cost is
        proportional to the number of touched summary rows plus the output
        size, not to the relation size.
        """
        total = self.row_count
        if count < 0 or start < 0 or start + count > total:
            raise IndexError(
                f"block [{start}, {start + count}) out of range for "
                f"{self.table.name!r} with {total} rows"
            )
        requested = list(columns) if columns is not None else self.column_names
        for name in requested:
            if not self.table.has_column(name):
                raise KeyError(f"table {self.table.name!r} has no column {name!r}")

        arrays = {
            name: np.empty(count, dtype=self.table.column(name).dtype.numpy_dtype)
            for name in requested
        }
        if count == 0:
            return arrays

        cursor = start
        filled = 0
        while filled < count:
            position, offset = self.summary.locate(cursor)
            row_start, row_end = self.summary.pk_interval_of_row(position)
            take = min(row_end - cursor, count - filled)
            segment = slice(filled, filled + take)
            global_indices = np.arange(cursor, cursor + take, dtype=np.int64)
            offsets = np.arange(offset, offset + take, dtype=np.int64)
            summary_row = self.summary.rows[position]

            for name in requested:
                if name == self.table.primary_key:
                    arrays[name][segment] = global_indices
                elif name in summary_row.fk_refs:
                    arrays[name][segment] = summary_row.fk_refs[name].targets_for(offsets)
                else:
                    arrays[name][segment] = summary_row.values.get(name, 0.0)

            filled += take
            cursor += take
        return arrays

    def iter_filtered_blocks(
        self,
        box: BoxCondition,
        batch_size: int = 8192,
        columns: Sequence[str] | None = None,
        skip_box: BoxCondition | None = None,
        offsets: tuple[int, int] | None = None,
    ) -> Iterator[tuple[int, int, int, dict[str, NDArray[Any]]]]:
        """Stream ``(start, generated, matched, block)`` with only matching rows.

        ``block`` holds the requested columns restricted to the rows of the
        batch that satisfy ``box``; ``generated`` is how many tuples were
        actually produced for the batch (the velocity the rate limiter should
        pace).  Summary-row segments that provably cannot contain a match
        (:meth:`RelationSummary.row_excluded`) are skipped without generating
        a single tuple, so a selective scan costs O(matching summary rows +
        output), not O(relation size) — and peak memory stays O(batch_size).

        ``skip_box`` is an *additional* condition (in practice a semi-join
        pushdown on a foreign-key column) whose rows the consumer does not
        need, but whose exclusion must not disturb the ``matched`` accounting
        for ``box``.  A segment that provably cannot satisfy ``skip_box`` is
        skipped by yielding ``(segment_start, 0, matched, {})`` where
        ``matched`` is the *exact* number of the segment's tuples satisfying
        ``box`` (:meth:`RelationSummary.count_matching_row`); when that count
        is not exactly computable the segment is generated normally so the
        consumer can mask it itself.

        ``offsets`` restricts the stream to the shard ``[lo, hi)`` of the pk
        offset space: exactly the yields of the unrestricted stream whose
        ``start`` lies in the shard are produced — batch boundaries stay
        anchored at segment starts, and a batch owned by the shard is
        generated in full even when it extends past ``hi``.  Concatenating
        the streams of any contiguous partition of ``[0, row_count)`` in
        shard order is therefore yield-for-yield identical to the serial
        stream, which is the contract ``repro.parallel`` workers rely on.
        """
        requested = list(columns) if columns is not None else self.column_names
        needed = columns_with_dependencies(requested, box.conditions)
        pk = self.table.primary_key
        lo, hi = offsets if offsets is not None else (0, self.row_count)
        first_position = 0
        if lo > 0:
            # Fast-forward to the first segment that can own a yield: every
            # earlier segment ends at or before ``lo``.  Keeps a shard window
            # O(#covered segments), not O(#summary rows).
            cumulative = self.summary.cumulative_offsets
            first_position = max(
                0, int(np.searchsorted(cumulative, lo, side="right")) - 1
            )
        for position in range(first_position, len(self.summary.rows)):
            segment_start, segment_end = self.summary.pk_interval_of_row(position)
            if segment_end <= segment_start:
                continue
            if segment_start >= hi:
                break  # segments are ordered: no later yield can start < hi
            if segment_end <= lo:
                continue  # every yield of this segment starts before lo
            if self.summary.row_excluded(position, box, pk_column=pk):
                add_counter("tuplegen.segments_skipped")
                continue
            if skip_box is not None and self.summary.row_excluded(
                position, skip_box, pk_column=pk
            ):
                matched = self.summary.count_matching_row(position, box, pk_column=pk)
                if matched is not None:
                    add_counter("tuplegen.segments_semijoin_skipped")
                    if matched and segment_start >= lo:
                        yield segment_start, 0, matched, {}
                    continue
            add_counter("tuplegen.segments_scanned")
            # First batch whose (segment-anchored) start falls in the shard.
            cursor = first_owned_batch_start(segment_start, lo, batch_size)
            while cursor < segment_end and cursor < hi:
                take = min(batch_size, segment_end - cursor)
                block = self.generate_block(cursor, take, needed)
                if box.conditions:
                    mask = box.evaluate(block)
                    matched = int(mask.sum())
                else:
                    mask = None
                    matched = take
                if mask is None or matched == take:
                    out = {name: block[name] for name in requested}
                else:
                    out = {name: block[name][mask] for name in requested}
                yield cursor, take, matched, out
                cursor += take

    def iter_rows(self, batch_size: int = 8192) -> Iterator[tuple]:
        """Stream every tuple of the relation in order."""
        names = self.column_names
        start = 0
        total = self.row_count
        while start < total:
            count = min(batch_size, total - start)
            block = self.generate_block(start, count)
            for i in range(count):
                yield tuple(block[name][i] for name in names)
            start += count

    def sample_rows(self, indices: Sequence[int], decoded: bool = True) -> list[tuple]:
        """Generate an arbitrary set of rows (used by the demo-style preview)."""
        if decoded:
            return [self.decoded_row(int(i)) for i in indices]
        return [self.row(int(i)) for i in indices]


@dataclass
class SummaryDatabaseFactory:
    """Creates tuple generators / dataless databases from a full summary."""

    summary: DatabaseSummary
    generators: dict[str, TupleGenerator] = field(default_factory=dict, init=False)

    def generator(self, table_name: str) -> TupleGenerator:
        if table_name not in self.generators:
            table = self.summary.schema.table(table_name)
            self.generators[table_name] = TupleGenerator(
                table=table, summary=self.summary.relation(table_name)
            )
        return self.generators[table_name]

    def all_generators(self) -> dict[str, TupleGenerator]:
        return {name: self.generator(name) for name in self.summary.relations}
