"""Sampling-based summary construction — the DataSynth-style baseline.

The paper attributes HYDRA's accuracy to its *deterministic* alignment and
contrasts it with the *sampling-based* strategy of DataSynth.  For the
ablation experiment (E8) this module instantiates the relation summary by
sampling instead of deterministic assignment:

* region counts are drawn from a multinomial distribution whose expectation is
  the LP solution (so every constraint holds only in expectation, with
  binomial fluctuations of relative magnitude ``~1/sqrt(k)``);
* the tuples of a region still draw their foreign-key targets from the
  matching referenced intervals, but at random rather than round-robin.

Running the verification step over a database regenerated from such a summary
shows the residual errors the paper's deterministic strategy eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np
from numpy.typing import NDArray

from ..catalog.schema import Table
from ..catalog.statistics import TableStatistics
from ..sql.predicates import BoxCondition
from .alignment import AlignedRelation, DeterministicAligner
from .regions import Region

__all__ = ["SamplingAligner"]


@dataclass
class SamplingAligner:
    """Drop-in replacement for :class:`DeterministicAligner` that samples."""

    statistics: TableStatistics | None = None
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def align(
        self,
        table: Table,
        regions: Sequence[Region],
        counts: NDArray[Any] | Sequence[int],
        ref_row_counts: Mapping[str, int] | None = None,
        domain: BoxCondition | None = None,
    ) -> AlignedRelation:
        counts = np.asarray(counts, dtype=np.float64)
        total = int(round(float(counts.sum())))
        sampled = self._sample_counts(counts, total)
        delegate = DeterministicAligner(statistics=self.statistics)
        return delegate.align(
            table=table,
            regions=regions,
            counts=sampled,
            ref_row_counts=ref_row_counts,
            domain=domain,
        )

    def _sample_counts(self, counts: NDArray[Any], total: int) -> NDArray[Any]:
        """Multinomial sample with the LP solution as the expected histogram."""
        if total <= 0 or counts.sum() <= 0:
            return np.zeros(len(counts), dtype=np.int64)
        probabilities = counts / counts.sum()
        return self._rng.multinomial(total, probabilities).astype(np.int64)
