"""Per-relation cardinality constraints and their symbolic predicates.

The preprocessor (see :mod:`repro.core.preprocessor`) decomposes every AQP
into constraints of the form *"the number of tuples of relation R satisfying
predicate P is k"*.  Because P may refer to attributes of relations that R
references through foreign keys (the filter on a joined dimension), the
predicate is kept *symbolic*: a box condition on R's own columns plus, for
each foreign-key column, a nested symbolic predicate that the referenced
tuples must satisfy.  The nested parts are *grounded* into plain interval
conditions on the FK column only after the referenced relation's summary has
been aligned (deterministic alignment), at which point "referenced tuples
satisfying Q" is a union of contiguous primary-key index intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..sql.predicates import BoxCondition

__all__ = [
    "SymbolicPredicate",
    "ReferencedPredicate",
    "CardinalityConstraint",
    "RelationConstraints",
]


@dataclass(frozen=True)
class ReferencedPredicate:
    """A condition on the tuples referenced through one foreign-key column."""

    table: str
    predicate: "SymbolicPredicate"

    def to_dict(self) -> dict[str, Any]:
        return {"table": self.table, "predicate": self.predicate.to_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ReferencedPredicate":
        return cls(
            table=payload["table"],
            predicate=SymbolicPredicate.from_dict(payload["predicate"]),
        )


@dataclass(frozen=True)
class SymbolicPredicate:
    """A conjunctive predicate over a relation, possibly crossing FK edges.

    ``box`` constrains the relation's own columns; ``references`` maps a
    foreign-key column name to the condition the referenced tuples must
    satisfy (recursively symbolic, to support snowflake chains).
    """

    box: BoxCondition = field(default_factory=lambda: BoxCondition({}))
    references: tuple[tuple[str, ReferencedPredicate], ...] = ()

    # ``references`` is stored as a sorted tuple of pairs so the predicate is
    # hashable and two structurally equal predicates compare equal — the
    # preprocessor relies on this for de-duplication.

    @classmethod
    def make(
        cls,
        box: BoxCondition | None = None,
        references: Mapping[str, ReferencedPredicate] | None = None,
    ) -> "SymbolicPredicate":
        pairs = tuple(sorted((references or {}).items()))
        return cls(box=box or BoxCondition({}), references=pairs)

    @property
    def reference_map(self) -> dict[str, ReferencedPredicate]:
        return dict(self.references)

    @property
    def is_trivial(self) -> bool:
        return self.box.is_unconstrained and not self.references

    def conjoin(self, other: "SymbolicPredicate") -> "SymbolicPredicate":
        """Conjunction of two symbolic predicates over the same relation."""
        merged_box = self.box.intersect(other.box)
        merged_refs = dict(self.references)
        for column, referenced in other.references:
            if column in merged_refs:
                existing = merged_refs[column]
                if existing.table != referenced.table:
                    raise ValueError(
                        f"foreign-key column {column!r} references both "
                        f"{existing.table!r} and {referenced.table!r}"
                    )
                merged_refs[column] = ReferencedPredicate(
                    table=existing.table,
                    predicate=existing.predicate.conjoin(referenced.predicate),
                )
            else:
                merged_refs[column] = referenced
        return SymbolicPredicate.make(box=merged_box, references=merged_refs)

    def with_reference(self, column: str, referenced: ReferencedPredicate) -> "SymbolicPredicate":
        return self.conjoin(SymbolicPredicate.make(references={column: referenced}))

    def with_box(self, box: BoxCondition) -> "SymbolicPredicate":
        return self.conjoin(SymbolicPredicate.make(box=box))

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "box": self.box.to_dict(),
            "references": {
                column: referenced.to_dict() for column, referenced in self.references
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SymbolicPredicate":
        return cls.make(
            box=BoxCondition.from_dict(payload.get("box", {})),
            references={
                column: ReferencedPredicate.from_dict(item)
                for column, item in payload.get("references", {}).items()
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [repr(self.box)]
        for column, referenced in self.references:
            parts.append(f"{column}→{referenced.table}[{referenced.predicate!r}]")
        return "SymbolicPredicate(" + " ∧ ".join(parts) + ")"


@dataclass(frozen=True)
class CardinalityConstraint:
    """``|σ_P(relation)| = cardinality`` extracted from one AQP edge."""

    relation: str
    predicate: SymbolicPredicate
    cardinality: int
    source: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "relation": self.relation,
            "predicate": self.predicate.to_dict(),
            "cardinality": self.cardinality,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CardinalityConstraint":
        return cls(
            relation=payload["relation"],
            predicate=SymbolicPredicate.from_dict(payload["predicate"]),
            cardinality=int(payload["cardinality"]),
            source=payload.get("source", ""),
        )


@dataclass
class RelationConstraints:
    """All cardinality constraints collected for one relation.

    ``tracking`` holds predicates that carry no cardinality of their own but
    must still shape the relation's region partition: they are the conditions
    other relations borrow through foreign keys (e.g. the ``orders`` half of a
    ``lineitem → orders → customer`` chain).  Registering them guarantees that
    every borrowed predicate is a union of whole regions, which is what makes
    the deterministic alignment exact.
    """

    relation: str
    row_count: int
    constraints: list[CardinalityConstraint] = field(default_factory=list)
    tracking: list[SymbolicPredicate] = field(default_factory=list)

    def add(self, constraint: CardinalityConstraint) -> None:
        if constraint.relation != self.relation:
            raise ValueError(
                f"constraint on {constraint.relation!r} added to {self.relation!r}"
            )
        self.constraints.append(constraint)

    def add_tracking(self, predicate: SymbolicPredicate) -> None:
        """Register a borrowed predicate (idempotent, trivial ones skipped)."""
        if predicate.is_trivial:
            return
        if predicate not in self.tracking:
            self.tracking.append(predicate)

    def deduplicated(self) -> list[CardinalityConstraint]:
        """Constraints with exact duplicates (same predicate & count) removed.

        Conflicting duplicates (same predicate, different counts) are all
        kept: the solver's soft mode will then spread the discrepancy, which
        mirrors how HYDRA absorbs inconsistent what-if annotations.
        """
        seen: set[tuple[SymbolicPredicate, int]] = set()
        unique: list[CardinalityConstraint] = []
        for constraint in self.constraints:
            key = (constraint.predicate, constraint.cardinality)
            if key in seen:
                continue
            seen.add(key)
            unique.append(constraint)
        return unique

    def conflicting_predicates(self) -> list[SymbolicPredicate]:
        """Predicates that appear with more than one distinct cardinality."""
        by_predicate: dict[SymbolicPredicate, set[int]] = {}
        for constraint in self.constraints:
            by_predicate.setdefault(constraint.predicate, set()).add(constraint.cardinality)
        return [predicate for predicate, counts in by_predicate.items() if len(counts) > 1]
