"""The memory-resident database summary — HYDRA's central artefact.

A summary is "minuscule": per relation it stores one row per region of the
LP solution, and each summary row carries

* ``#TUPLES`` — how many tuples share the row's value vector (exactly the
  ``#TUPLES`` column of the paper's Figure 4);
* a representative value for every non-key attribute;
* for every foreign-key attribute, the union of referenced primary-key
  *index intervals* the tuples of this row may point to (the deterministic
  alignment made these contiguous per referenced region).

Primary keys are not stored at all — they are emitted as auto-numbers during
regeneration, as the paper describes.  The summary is JSON-serialisable, and
its serialised size is the "few KB" metric of experiment E1.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, SupportsIndex

import numpy as np
from numpy.typing import NDArray

from ..catalog.schema import Schema, Table
from ..serialization import JsonDocument
from ..sql.predicates import BoxCondition, Interval, IntervalSet
from .errors import SummaryError

__all__ = [
    "FKReference",
    "SummaryRow",
    "RowBoxMatch",
    "RelationSummary",
    "DatabaseSummary",
]


@dataclass(frozen=True)
class FKReference:
    """Admissible referenced-pk index intervals for one foreign-key column."""

    ref_table: str
    intervals: IntervalSet

    def target_count(self) -> int:
        """Number of distinct referenced pk indices available."""
        return self.intervals.count_integers()

    def kth_target(self, k: int) -> int:
        """The k-th admissible referenced pk index (0-based, round-robin)."""
        total = self.target_count()
        if total <= 0:
            raise SummaryError(
                f"foreign-key reference to {self.ref_table!r} has no admissible target"
            )
        k = int(k) % total
        for interval in self.intervals:
            size = interval.count_integers()
            if k < size:
                return int(np.ceil(interval.low)) + k
            k -= size
        raise AssertionError("unreachable: k exceeded interval sizes")

    def targets_for(self, offsets: NDArray[Any]) -> NDArray[Any]:
        """Vectorised :meth:`kth_target` for an array of per-row offsets."""
        total = self.target_count()
        if total <= 0:
            raise SummaryError(
                f"foreign-key reference to {self.ref_table!r} has no admissible target"
            )
        offsets = np.asarray(offsets, dtype=np.int64) % total
        sizes = np.array([interval.count_integers() for interval in self.intervals], dtype=np.int64)
        starts = np.array(
            [int(np.ceil(interval.low)) for interval in self.intervals], dtype=np.int64
        )
        boundaries = np.cumsum(sizes)
        which = np.searchsorted(boundaries, offsets, side="right")
        previous = np.concatenate(([0], boundaries[:-1]))
        return starts[which] + (offsets - previous[which])

    def count_matching_offsets(self, num_offsets: int, allowed: IntervalSet) -> int:
        """How many of the offsets ``0..num_offsets-1`` hit a target in ``allowed``.

        The round-robin spread assigns offset ``k`` the ``(k mod total)``-th
        admissible target, so the answer only depends on which *positions* in
        the flattened target order fall inside ``allowed``.  Each admissible
        interval maps onto a contiguous position range, which makes the count
        computable in O(#intervals²) interval arithmetic — no target is ever
        enumerated, keeping the summary-fast-path O(#summary rows).
        """
        total = self.target_count()
        if total <= 0 or num_offsets <= 0:
            return 0
        full_cycles, remainder = divmod(int(num_offsets), total)
        matched = 0
        position = 0
        for interval in self.intervals:
            size = interval.count_integers()
            base = int(np.ceil(interval.low))
            for piece in allowed.intersect(IntervalSet([interval])):
                piece_size = piece.count_integers()
                if piece_size == 0:
                    continue
                lo = position + (int(np.ceil(piece.low)) - base)
                hi = lo + piece_size
                matched += piece_size * full_cycles
                matched += max(0, min(hi, remainder) - lo)
            position += size
        return matched

    def to_dict(self) -> dict[str, Any]:
        return {"ref_table": self.ref_table, "intervals": self.intervals.to_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FKReference":
        return cls(
            ref_table=payload["ref_table"],
            intervals=IntervalSet.from_dict(payload["intervals"]),
        )


@dataclass
class SummaryRow:
    """One region's contribution to a relation summary."""

    count: int
    values: dict[str, float] = field(default_factory=dict)
    fk_refs: dict[str, FKReference] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "values": dict(self.values),
            "fk_refs": {column: ref.to_dict() for column, ref in self.fk_refs.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SummaryRow":
        return cls(
            count=int(payload["count"]),
            values={column: float(value) for column, value in payload.get("values", {}).items()},
            fk_refs={
                column: FKReference.from_dict(item)
                for column, item in payload.get("fk_refs", {}).items()
            },
        )


@dataclass(frozen=True)
class RowBoxMatch:
    """How one summary row's tuples relate to a box condition.

    Produced by :meth:`RelationSummary.classify_row` — the single source of
    truth for the per-row pass/fail/partial column arithmetic that every
    exact summary consumer (counting, pk-interval projection, the engine's
    join-COUNT fast path) builds on.  ``count`` is the row's tuple count;
    columns whose constraint passes for *all* tuples are omitted entirely;
    ``pk_window`` is the sub-segment of pk indices matching a partial
    primary-key constraint (``None`` when the pk is unconstrained or fully
    covered); ``partial_fks`` maps each foreign-key column whose round-robin
    spread matches the box only partially to ``(allowed_intervals,
    matched_count)``.  Two or more partial columns are correlated through
    the tuple offset and generally not exactly combinable.
    """

    count: int
    pk_window: "IntervalSet | None" = None
    partial_fks: Mapping[str, tuple[IntervalSet, int]] = field(default_factory=dict)

    @property
    def partial_columns(self) -> int:
        """Number of columns whose match is partial (not all-or-nothing)."""
        return (1 if self.pk_window is not None else 0) + len(self.partial_fks)


class _InvalidatingRows(list["SummaryRow"]):
    """A row list that drops its owner's offset cache on any list mutation."""

    def __init__(self, items: Iterable["SummaryRow"], owner: "RelationSummary") -> None:
        super().__init__(items)
        self._owner = owner

    def _invalidate(self) -> None:
        # The owner is absent while pickle/copy reconstruct the list.
        owner = getattr(self, "_owner", None)
        if owner is not None:
            owner.invalidate_offsets()

    def append(self, item: "SummaryRow") -> None:
        self._invalidate()
        super().append(item)

    def extend(self, items: Iterable["SummaryRow"]) -> None:
        self._invalidate()
        super().extend(items)

    def insert(self, index: SupportsIndex, item: "SummaryRow") -> None:
        self._invalidate()
        super().insert(index, item)

    def remove(self, item: "SummaryRow") -> None:
        self._invalidate()
        super().remove(item)

    def pop(self, index: SupportsIndex = -1) -> "SummaryRow":
        self._invalidate()
        return super().pop(index)

    def clear(self) -> None:
        self._invalidate()
        super().clear()

    def sort(self, *args: Any, **kwargs: Any) -> None:
        self._invalidate()
        super().sort(*args, **kwargs)

    def reverse(self) -> None:
        self._invalidate()
        super().reverse()

    def __setitem__(self, index: Any, value: Any) -> None:
        self._invalidate()
        super().__setitem__(index, value)

    def __delitem__(self, index: SupportsIndex | slice) -> None:
        self._invalidate()
        super().__delitem__(index)

    def __iadd__(self, other: Iterable["SummaryRow"]) -> "_InvalidatingRows":
        self._invalidate()
        super().__iadd__(other)
        return self

    def __imul__(self, count: SupportsIndex) -> "_InvalidatingRows":
        self._invalidate()
        super().__imul__(count)
        return self


@dataclass
class RelationSummary:
    """Summary of one relation: an ordered list of summary rows.

    The cumulative pk offsets that back :meth:`locate` are computed lazily and
    cached: appending rows (:meth:`add_row` / :meth:`extend_rows`) is O(1) and
    the cache is rebuilt once on the next offset-dependent access.  Direct
    list mutation of ``rows`` (append/replace/pop on a hand-edited scenario
    summary) invalidates the cache automatically; the only mutation the cache
    cannot observe is an in-place edit of an existing row's ``count`` — call
    :meth:`invalidate_offsets` after such an edit.
    """

    table: str
    rows: list[SummaryRow] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._cumulative: NDArray[Any] | None = None
        self.rows = _InvalidatingRows(self.rows, owner=self)

    def invalidate_offsets(self) -> None:
        """Drop the cached cumulative offsets (after mutating a row's count)."""
        self._cumulative = None

    @property
    def cumulative_offsets(self) -> NDArray[Any]:
        """Cumulative pk offsets, rebuilt when rows were added or invalidated."""
        cached = self._cumulative
        if cached is None or len(cached) != len(self.rows) + 1:
            counts = [max(0, int(row.count)) for row in self.rows]
            cached = np.cumsum([0] + counts)
            self._cumulative = cached
        return cached

    @property
    def total_rows(self) -> int:
        return int(self.cumulative_offsets[-1])

    @property
    def row_offsets(self) -> NDArray[Any]:
        """Starting pk index of each summary row (deterministic alignment)."""
        return self.cumulative_offsets[:-1]

    def add_row(self, row: SummaryRow) -> None:
        self.rows.append(row)
        self._cumulative = None

    def extend_rows(self, rows: Iterable[SummaryRow]) -> None:
        """Append many rows with a single offset invalidation (O(n), not O(n²))."""
        self.rows.extend(rows)
        self._cumulative = None

    def locate(self, index: int) -> tuple[int, int]:
        """Map a pk index to ``(summary_row_position, offset_within_row)``."""
        cumulative = self.cumulative_offsets
        if not 0 <= index < int(cumulative[-1]):
            raise IndexError(f"row index {index} out of range for {self.table!r}")
        position = int(np.searchsorted(cumulative, index, side="right")) - 1
        return position, index - int(cumulative[position])

    def pk_interval_of_row(self, position: int) -> tuple[int, int]:
        """The ``[start, end)`` pk index interval covered by one summary row."""
        cumulative = self.cumulative_offsets
        return int(cumulative[position]), int(cumulative[position + 1])

    # -- predicate pushdown support ----------------------------------------

    def row_excluded(self, position: int, box: BoxCondition, pk_column: str | None = None) -> bool:
        """True when no tuple of summary row ``position`` can satisfy ``box``.

        This is the cheap per-segment check the filtered block iterator uses
        to skip whole summary-row segments without generating a single tuple.
        """
        if box.is_empty:
            return True
        row = self.rows[position]
        start, end = self.pk_interval_of_row(position)
        for column, intervals in box.conditions.items():
            if pk_column is not None and column == pk_column:
                window = intervals.intersect(IntervalSet([Interval(float(start), float(end))]))
                if window.count_integers() == 0:
                    return True
            elif column in row.fk_refs:
                reachable = row.fk_refs[column].intervals.intersect(intervals)
                if reachable.count_integers() == 0:
                    return True
            else:
                if not intervals.contains(float(row.values.get(column, 0.0))):
                    return True
        return False

    def classify_row(
        self, position: int, box: BoxCondition, pk_column: str | None = None
    ) -> RowBoxMatch | None:
        """Classify summary row ``position`` against ``box`` column by column.

        Returns ``None`` when no tuple of the row can satisfy the box (some
        constrained column fails entirely, the row is empty, or the box is
        unsatisfiable).  Otherwise each constrained column either passes for
        *all* tuples — representative value inside the box, every actual fk
        target / pk index covered — and is omitted from the result, or
        matches an exactly countable subset recorded in
        :class:`RowBoxMatch` (a pk window, or a partially-covered round-robin
        fk spread counted via :meth:`FKReference.count_matching_offsets`).
        """
        row = self.rows[position]
        count = max(0, int(row.count))
        if count == 0 or box.is_empty:
            return None
        start, end = self.pk_interval_of_row(position)
        pk_window: IntervalSet | None = None
        partial_fks: dict[str, tuple[IntervalSet, int]] = {}
        for column, intervals in box.conditions.items():
            if pk_column is not None and column == pk_column:
                window = intervals.intersect(
                    IntervalSet([Interval(float(start), float(end))])
                )
                matched = window.count_integers()
                if matched < count:
                    pk_window = window
            elif column in row.fk_refs:
                matched = row.fk_refs[column].count_matching_offsets(count, intervals)
                if matched < count:
                    partial_fks[column] = (intervals, matched)
            else:
                value = float(row.values.get(column, 0.0))
                matched = count if intervals.contains(value) else 0
            if matched == 0:
                return None
        return RowBoxMatch(count=count, pk_window=pk_window, partial_fks=partial_fks)

    def count_matching_row(
        self, position: int, box: BoxCondition, pk_column: str | None = None
    ) -> int | None:
        """Exact number of tuples of summary row ``position`` satisfying ``box``.

        When two or more columns match only partially the matched subsets
        are correlated through the tuple offset, so the method returns
        ``None`` and the caller must fall back to streaming generation.
        """
        match = self.classify_row(position, box, pk_column=pk_column)
        if match is None:
            return 0
        if match.partial_columns > 1:
            return None
        if match.pk_window is not None:
            return match.pk_window.count_integers()
        if match.partial_fks:
            (_intervals, matched), = match.partial_fks.values()
            return matched
        return match.count

    def count_matching(self, box: BoxCondition, pk_column: str | None = None) -> int | None:
        """Exact number of regenerated tuples satisfying ``box`` — or ``None``.

        Answered purely from the summary in O(#summary rows) by summing
        :meth:`count_matching_row`; returns ``None`` as soon as any row's
        matched subset is not exactly countable.
        """
        if box.is_empty:
            return 0
        total_matched = 0
        for position in range(len(self.rows)):
            matched = self.count_matching_row(position, box, pk_column=pk_column)
            if matched is None:
                return None
            total_matched += matched
        return total_matched

    def matching_pk_intervals(
        self, box: BoxCondition, pk_column: str | None = None, exact: bool = False
    ) -> IntervalSet | None:
        """Pk *index* intervals whose tuples may satisfy ``box``.

        Walks the summary rows once and projects the box onto the relation's
        contiguous pk index space (the deterministic alignment assigns each
        summary row the pk range :meth:`pk_interval_of_row`).  By default the
        result is a sound *superset*: a summary row whose fk spread matches
        the box only partially keeps its whole segment, because the matching
        offsets are scattered by the round-robin and do not form a pk range.
        With ``exact=True`` the method instead returns exactly the matching
        pk indices, or ``None`` when some row's matching subset is not a pk
        range — the contract the join-COUNT fast path needs.
        """
        if box.is_empty:
            return IntervalSet.empty()
        pieces: list[Interval] = []
        for position in range(len(self.rows)):
            match = self.classify_row(position, box, pk_column=pk_column)
            if match is None:
                continue
            if match.partial_fks and exact:
                # Matching offsets are round-robin-scattered across the
                # segment: not representable as pk intervals.
                return None
            if match.pk_window is not None:
                pieces.extend(match.pk_window.intervals)
            else:
                start, end = self.pk_interval_of_row(position)
                pieces.append(Interval(float(start), float(end)))
        return IntervalSet(pieces)

    def non_empty_rows(self) -> list[SummaryRow]:
        return [row for row in self.rows if row.count > 0]

    def to_dict(self) -> dict[str, Any]:
        return {"table": self.table, "rows": [row.to_dict() for row in self.rows]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RelationSummary":
        return cls(
            table=payload["table"],
            rows=[SummaryRow.from_dict(item) for item in payload.get("rows", [])],
        )


@dataclass
class DatabaseSummary(JsonDocument):
    """The complete database summary: one relation summary per table.

    ``version`` counts the summary's maintenance generations: a from-scratch
    build is version 1 and every incremental :meth:`splice` (the
    ``Hydra.extend_summary`` delta path) bumps it by one, so downstream
    consumers can tell refreshed artefacts apart.  ``extension_state`` is the
    vendor-side bookkeeping (base workload plus per-relation partition
    inputs) that lets a later session resume incremental maintenance from the
    serialised summary alone; it is excluded from :meth:`size_bytes` because
    it is never part of the artefact shipped back to the client.
    """

    schema: Schema
    relations: dict[str, RelationSummary] = field(default_factory=dict)
    build_info: dict[str, Any] = field(default_factory=dict)
    version: int = 1
    extension_state: dict[str, Any] | None = None

    def relation(self, name: str) -> RelationSummary:
        """The summary of one relation (:class:`SummaryError` when absent)."""
        if name not in self.relations:
            raise SummaryError(f"summary has no relation {name!r}")
        return self.relations[name]

    def add_relation(self, summary: RelationSummary) -> None:
        """Attach (or replace) one relation summary under its table name."""
        self.relations[summary.table] = summary

    def splice(self, replacements: Mapping[str, RelationSummary]) -> "DatabaseSummary":
        """A new summary with the given relation summaries swapped in.

        Relation order (and hence every untouched relation's regenerated
        tuple stream) is preserved; untouched :class:`RelationSummary`
        objects are shared with this summary, which is what makes the
        incremental-maintenance guarantee "untouched relations stay
        bit-identical" trivial.  ``version`` is bumped by one; replacement
        names must already exist.
        """
        unknown = sorted(set(replacements) - set(self.relations))
        if unknown:
            raise SummaryError(
                "cannot splice unknown relation(s): " + ", ".join(map(repr, unknown))
            )
        for name, replacement in replacements.items():
            if replacement.table != name:
                raise SummaryError(
                    f"replacement for {name!r} summarises {replacement.table!r}"
                )
        return DatabaseSummary(
            schema=self.schema,
            relations={
                name: replacements.get(name, relation)
                for name, relation in self.relations.items()
            },
            build_info=dict(self.build_info),
            version=self.version + 1,
        )

    def row_count(self, name: str) -> int:
        """Number of tuples relation ``name`` regenerates."""
        return self.relation(name).total_rows

    def total_rows(self) -> int:
        """Total regenerable tuples across all relations."""
        return sum(summary.total_rows for summary in self.relations.values())

    def total_summary_rows(self) -> int:
        """Total stored summary rows (the artefact's actual size driver)."""
        return sum(len(summary.rows) for summary in self.relations.values())

    def validate(self) -> None:
        """Check structural consistency against the schema."""
        for name, summary in self.relations.items():
            table: Table = self.schema.table(name)
            pk = table.primary_key
            fk_columns = table.foreign_key_columns
            for row in summary.rows:
                for column in row.values:
                    if not table.has_column(column):
                        raise SummaryError(
                            f"summary of {name!r} mentions unknown column {column!r}"
                        )
                    if column == pk:
                        raise SummaryError(
                            f"summary of {name!r} stores the primary key {column!r}; "
                            "primary keys must be auto-numbered"
                        )
                for column, ref in row.fk_refs.items():
                    if column not in fk_columns:
                        raise SummaryError(
                            f"summary of {name!r} has an FK reference on non-FK "
                            f"column {column!r}"
                        )
                    fk = table.foreign_key_for(column)
                    if fk is not None and fk.ref_table != ref.ref_table:
                        raise SummaryError(
                            f"summary of {name!r} points {column!r} at "
                            f"{ref.ref_table!r}, schema says {fk.ref_table!r}"
                        )

    # -- size accounting (the "few KB" claim) ------------------------------

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "schema": self.schema.to_dict(),
            "relations": {
                name: summary.to_dict() for name, summary in self.relations.items()
            },
            "build_info": self.build_info,
            "version": int(self.version),
        }
        if self.extension_state is not None:
            payload["extension_state"] = self.extension_state
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DatabaseSummary":
        return cls(
            schema=Schema.from_dict(payload["schema"]),
            relations={
                name: RelationSummary.from_dict(item)
                for name, item in payload.get("relations", {}).items()
            },
            build_info=dict(payload.get("build_info", {})),
            version=int(payload.get("version", 1)),
            extension_state=payload.get("extension_state"),
        )

    def size_bytes(self, include_schema: bool = False) -> int:
        """Serialised size of the summary (excluding the schema by default).

        Vendor-side ``extension_state`` bookkeeping never counts: the paper's
        "few KB" metric is about the artefact that regenerates data.
        """
        payload = self.to_dict()
        excluded = {"extension_state"} | (set() if include_schema else {"schema"})
        payload = {key: value for key, value in payload.items() if key not in excluded}
        return len(json.dumps(payload).encode("utf-8"))

    def fingerprint(self) -> str:
        """Content hash identifying the regeneration-relevant summary state.

        The sha256 hex digest of the canonical JSON serialisation of the
        schema, every relation's summary rows and ``version`` — exactly what
        determines the regenerated tuple streams.  Descriptive
        ``build_info`` (which records wall-clock timings, so two builds of
        the same summary would differ) and vendor-side ``extension_state``
        are excluded: rebuilding an identical summary yields an identical
        fingerprint.  Exports record this value in their ``MANIFEST.json``
        so ``hydra-verify --against`` can pin an export directory to the
        summary content that produced it.
        """
        payload = self.to_dict()
        payload.pop("extension_state", None)
        payload.pop("build_info", None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def summary_size_report(summary: DatabaseSummary) -> list[tuple[str, int, int]]:
    """Per-relation (name, summary rows, regenerated rows) listing."""
    report = []
    for name, relation in summary.relations.items():
        report.append((name, len(relation.rows), relation.total_rows))
    return report


def iter_summary_rows(summary: DatabaseSummary) -> Iterable[tuple[str, SummaryRow]]:
    for name, relation in summary.relations.items():
        for row in relation.rows:
            yield name, row
