"""LP solving and integer rounding.

The paper feeds the per-relation LPs to the Z3 SMT solver; any LP backend that
returns a feasible non-negative point is equivalent for the algorithm, so this
reproduction uses ``scipy.optimize.linprog`` (HiGHS).  Two modes are offered:

* **exact** — the constraints are equalities; infeasibility raises
  :class:`~repro.core.errors.InfeasibleConstraintsError` (scenario
  construction relies on this signal);
* **soft** — per-constraint slack variables are added and their L1 norm is
  minimised, so an inconsistent constraint set still yields the closest
  achievable summary together with per-constraint residuals (this is also how
  residual relative errors are reported for the paper's quality graphs).

In exact mode the caller may additionally pass per-region *target estimates*
(derived from the client's column statistics under an independence
assumption).  The solver then picks, among all exactly feasible points, the
one closest to the targets in L1 distance.  This "statistics-guided solution
selection" matters for HYDRA's topological processing: a plain vertex solution
of a referenced relation's LP tends to empty out the overlaps between
predicate regions, which can make the *referencing* relation's constraints
unsatisfiable even though the original database satisfied them; the guided
solution keeps overlaps populated in proportion to the client statistics and
thereby preserves downstream feasibility (the deterministic-alignment property
the paper relies on).

The fractional LP solution is converted to integer region counts with a
largest-remainder rounding that preserves the relation's total row count
exactly; the (at most ±1 per constraint) rounding discrepancies are part of
the "minor additive errors" the paper attributes to post-processing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Literal

import numpy as np
from numpy.typing import NDArray

from ..telemetry.session import add_counter, observe
from .errors import InfeasibleConstraintsError, SolverError
from .lp import LPProblem

try:  # pragma: no cover - exercised implicitly by the import fallback test
    from scipy import sparse
    from scipy.optimize import linprog as _scipy_linprog
except ImportError:  # pragma: no cover
    sparse = None
    _scipy_linprog = None

__all__ = ["LPSolution", "LPSolver", "round_preserving_total", "repair_rounding"]

SolveMode = Literal["exact", "soft"]


@dataclass
class LPSolution:
    """Result of solving one per-relation LP."""

    relation: str
    counts: NDArray[Any]                # fractional region counts
    integral_counts: NDArray[Any]       # rounded region counts
    status: str
    solve_seconds: float
    residuals: NDArray[Any]             # signed A x − b at the fractional solution
    relative_errors: NDArray[Any]
    mode: SolveMode
    objective: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def max_relative_error(self) -> float:
        if self.relative_errors.size == 0:
            return 0.0
        return float(np.max(self.relative_errors))

    @property
    def total_rows(self) -> int:
        return int(self.integral_counts.sum())


@dataclass
class LPSolver:
    """Solves cardinality LPs with SciPy/HiGHS."""

    mode: SolveMode = "exact"
    method: str = "highs"

    def solve(
        self,
        problem: LPProblem,
        targets: NDArray[Any] | None = None,
        warm_start: NDArray[Any] | None = None,
    ) -> LPSolution:
        """Solve one per-relation LP.

        ``targets`` (optional, exact mode only) are per-region count estimates
        used to select among feasible solutions; see the module docstring.

        ``warm_start`` (optional) is a candidate solution carried over from a
        previous build of the same relation — the integral region counts the
        incremental pipeline already regenerated data from.  When the
        candidate is non-negative and satisfies every constraint row exactly,
        it is returned as-is (status ``"warm-reused"``) without invoking the
        LP backend; otherwise it is silently ignored and the problem is
        solved from scratch.  Reusing a feasible previous solution keeps the
        already-shipped data stream stable under a delta workload, at the
        price of no longer matching what a cold solve of the extended problem
        would have picked — callers opt in accordingly.
        """
        if problem.num_variables == 0:
            return self._empty_solution(problem)
        if warm_start is not None:
            warm = self._try_warm_start(problem, warm_start)
            if warm is not None:
                add_counter("solver.warm_start.reused")
                return warm
        start = time.perf_counter()
        if self.mode == "exact":
            counts, status, objective, iterations = self._solve_exact(problem, targets)
        else:
            counts, status, objective, iterations = self._solve_soft(problem)
        elapsed = time.perf_counter() - start
        add_counter("solver.lp_solves")
        add_counter("solver.lp_iterations", float(iterations))
        observe("solver.lp_seconds", elapsed)

        residuals = problem.residuals(counts)
        relative_errors = problem.relative_errors(counts)
        integral = round_preserving_total(counts)
        if self.mode == "exact":
            integral = repair_rounding(problem, integral)
        return LPSolution(
            relation=problem.relation,
            counts=counts,
            integral_counts=integral,
            status=status,
            solve_seconds=elapsed,
            residuals=residuals,
            relative_errors=relative_errors,
            mode=self.mode,
            objective=objective,
            metadata={"lp_iterations": iterations},
        )

    # -- internals --------------------------------------------------------

    def _require_scipy(self) -> None:
        if _scipy_linprog is None:
            raise SolverError(
                "scipy is required for LP solving but could not be imported"
            )

    def _try_warm_start(
        self, problem: LPProblem, candidate: NDArray[Any]
    ) -> LPSolution | None:
        """Accept a previous solution when it satisfies the LP exactly."""
        candidate = np.asarray(candidate, dtype=np.float64)
        if candidate.shape != (problem.num_variables,):
            return None
        if candidate.size and float(candidate.min()) < 0.0:
            return None
        residuals = problem.residuals(candidate)
        if residuals.size and float(np.max(np.abs(residuals))) > 1e-6:
            return None
        integral = np.asarray(np.rint(candidate), dtype=np.int64)
        return LPSolution(
            relation=problem.relation,
            counts=candidate,
            integral_counts=integral,
            status="warm-reused",
            solve_seconds=0.0,
            residuals=residuals,
            relative_errors=problem.relative_errors(candidate),
            mode=self.mode,
            objective=0.0,
            metadata={"warm_start": True},
        )

    def _empty_solution(self, problem: LPProblem) -> LPSolution:
        counts = np.zeros(0, dtype=np.float64)
        return LPSolution(
            relation=problem.relation,
            counts=counts,
            integral_counts=counts.astype(np.int64),
            status="empty",
            solve_seconds=0.0,
            residuals=problem.residuals(counts),
            relative_errors=problem.relative_errors(counts),
            mode=self.mode,
        )

    def _solve_exact(
        self, problem: LPProblem, targets: NDArray[Any] | None = None
    ) -> tuple[NDArray[Any], str, float, int]:
        self._require_scipy()
        n = problem.num_variables
        if targets is None:
            objective = np.zeros(n)
            result = _scipy_linprog(
                c=objective,
                A_eq=problem.matrix,
                b_eq=problem.rhs,
                bounds=[(0, None)] * n,
                method=self.method,
            )
            if not result.success:
                raise InfeasibleConstraintsError(
                    problem.relation, f"LP solver status: {result.message}"
                )
            return np.maximum(result.x, 0.0), "optimal", float(result.fun), _iterations(result)

        # Statistics-guided selection: minimise Σ t_j with t_j ≥ |x_j − e_j|.
        # The deviation constraints are two identity blocks, so they are built
        # sparse — region counts routinely reach thousands of variables.
        targets = np.asarray(targets, dtype=np.float64)
        if targets.shape != (n,):
            raise ValueError("targets must have one entry per region")
        identity = sparse.identity(n, format="csr")
        objective = np.concatenate([np.zeros(n), np.ones(n)])
        a_ub = sparse.vstack(
            [
                sparse.hstack([identity, -identity]),    # x − t ≤ e
                sparse.hstack([-identity, -identity]),   # −x − t ≤ −e
            ],
            format="csr",
        )
        b_ub = np.concatenate([targets, -targets])
        a_eq = sparse.hstack(
            [sparse.csr_matrix(problem.matrix), sparse.csr_matrix((problem.matrix.shape[0], n))],
            format="csr",
        )
        result = _scipy_linprog(
            c=objective,
            A_eq=a_eq,
            b_eq=problem.rhs,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=[(0, None)] * (2 * n),
            method=self.method,
        )
        if not result.success:
            raise InfeasibleConstraintsError(
                problem.relation, f"LP solver status: {result.message}"
            )
        return (
            np.maximum(result.x[:n], 0.0),
            "optimal-guided",
            float(result.fun),
            _iterations(result),
        )

    def _solve_soft(self, problem: LPProblem) -> tuple[NDArray[Any], str, float, int]:
        """Minimise the L1 norm of constraint violations.

        Variables: [x (regions), u (positive slack), v (negative slack)] with
        ``A x + u − v = b`` and objective ``Σ u + Σ v``.  The row-count row is
        kept hard (no slack) so regenerated relations always have the right
        size, matching HYDRA's behaviour of absorbing discrepancies into the
        workload constraints rather than the table volume.
        """
        self._require_scipy()
        m, n = problem.matrix.shape
        soft_rows = [i for i in range(m) if i != problem.row_count_index]
        s = len(soft_rows)

        matrix = np.zeros((m, n + 2 * s))
        matrix[:, :n] = problem.matrix
        for slack_index, row in enumerate(soft_rows):
            matrix[row, n + slack_index] = 1.0
            matrix[row, n + s + slack_index] = -1.0

        objective = np.concatenate([np.zeros(n), np.ones(2 * s)])
        result = _scipy_linprog(
            c=objective,
            A_eq=matrix,
            b_eq=problem.rhs,
            bounds=[(0, None)] * (n + 2 * s),
            method=self.method,
        )
        if not result.success:
            raise SolverError(
                f"soft LP for relation {problem.relation!r} failed: {result.message}"
            )
        counts = np.maximum(result.x[:n], 0.0)
        return counts, "soft-optimal", float(result.fun), _iterations(result)


def _iterations(result: Any) -> int:
    """Iteration count of a scipy ``linprog`` result (0 when unreported)."""
    try:
        return int(getattr(result, "nit", 0) or 0)
    except (TypeError, ValueError):
        return 0


def repair_rounding(
    problem: LPProblem,
    counts: NDArray[Any],
    max_moves: int = 500,
    candidate_limit: int = 64,
) -> NDArray[Any]:
    """Greedy integer repair of rounding noise.

    Largest-remainder rounding preserves the relation's total row count but
    may leave individual constraint sums off by a handful of rows.  This pass
    moves single tuples between regions — which keeps the total intact — as
    long as each move strictly reduces the L1 constraint violation.  Donor and
    receiver candidates are ranked by how well their constraint-membership
    column correlates with the current residual sign, and the search is
    bounded, so the pass is cheap even for partitions with tens of thousands
    of regions.  It is a clean-up for rounding noise, not a substitute for the
    LP: if the rounded solution is already exact it does nothing.
    """
    counts = np.asarray(counts, dtype=np.int64).copy()
    if counts.size == 0 or problem.num_constraints == 0:
        return counts
    matrix = problem.matrix
    residual = matrix @ counts - problem.rhs

    for _ in range(max_moves):
        violation = float(np.abs(residual).sum())
        if violation < 0.5:
            break
        signs = np.sign(residual)
        correlation = signs @ matrix
        positive = np.where(counts > 0)[0]
        if positive.size == 0:
            break
        # Donors: populated regions whose removal reduces over-satisfied rows.
        donor_order = positive[np.argsort(-correlation[positive], kind="stable")]
        donors = donor_order[:candidate_limit]
        # Receivers: regions whose increment feeds under-satisfied rows.
        receiver_order = np.argsort(correlation, kind="stable")
        receivers = receiver_order[:candidate_limit]

        donor_columns = matrix[:, donors]                       # (m, |J|)
        receiver_columns = matrix[:, receivers]                 # (m, |K|)
        candidate_residuals = (
            residual[:, None, None] - donor_columns[:, :, None] + receiver_columns[:, None, :]
        )
        scores = np.abs(candidate_residuals).sum(axis=0)
        best_flat = int(np.argmin(scores))
        best_score = float(scores.flat[best_flat])
        if best_score >= violation - 0.5:
            break
        donor_index = donors[best_flat // len(receivers)]
        receiver_index = receivers[best_flat % len(receivers)]
        counts[donor_index] -= 1
        counts[receiver_index] += 1
        residual = residual - matrix[:, donor_index] + matrix[:, receiver_index]
    return counts


def round_preserving_total(counts: NDArray[Any]) -> NDArray[Any]:
    """Round fractional counts to integers, preserving their sum exactly.

    Largest-remainder (Hamilton) rounding: floor everything, then hand out the
    remaining units to the entries with the largest fractional parts.  The
    result is deterministic (ties broken by index).
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0:
        return counts.astype(np.int64)
    counts = np.maximum(counts, 0.0)
    floors = np.floor(counts).astype(np.int64)
    target_total = int(round(float(counts.sum())))
    deficit = target_total - int(floors.sum())
    if deficit <= 0:
        return floors
    remainders = counts - floors
    # argsort is ascending; take the largest remainders, ties by lower index.
    order = np.lexsort((np.arange(counts.size), -remainders))
    result = floors.copy()
    result[order[:deficit]] += 1
    return result
