"""The end-to-end HYDRA vendor pipeline.

``Hydra`` wires together the components of the paper's architecture
(Figure 2) on the vendor side:

    AQPs + metadata
        → Preprocessor (per-relation constraint decomposition)
        → LP Formulator (region partitioning, one LP per relation)
        → LP solver (SciPy/HiGHS standing in for Z3)
        → Summary Generator (deterministic alignment)
        → referential-integrity post-processing
        → database summary
        → Tuple Generator / datagen scan (dynamic regeneration)

Relations are processed in topological order of the foreign-key graph so that
borrowed predicates can be grounded against the already-aligned referenced
relations.  The pipeline records per-relation build statistics (LP size,
solve time, residual errors, grid-baseline complexity) — the numbers the
demo's vendor interface tabulates and that the benchmarks report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Literal, Mapping, Sequence

import numpy as np

from ..catalog.metadata import DatabaseMetadata
from ..catalog.schema import Table
from ..executor.datagen import DataGenRelation, ParallelDataGenRelation
from ..executor.rate import RateLimiter
from ..parallel.pool import default_min_parallel_rows, default_workers
from ..plans.aqp import AnnotatedQueryPlan
from ..sql.expressions import BoxCondition, Interval, IntervalSet
from ..storage.database import Database, MaterializedRelation
from .alignment import AlignedRelation, DeterministicAligner
from .constraints import CardinalityConstraint, SymbolicPredicate
from .errors import HydraError, InfeasibleConstraintsError
from .grid import grid_variable_count
from .lp import build_lp
from .preprocessor import WorkloadConstraints, decompose_workload
from .refint import ReferentialReport, enforce_referential_integrity
from .regions import RegionPartitioner
from .sampling import SamplingAligner
from .solver import LPSolver
from .summary import DatabaseSummary
from .tuplegen import SummaryDatabaseFactory, TupleGenerator

__all__ = ["RelationBuildInfo", "SummaryBuildReport", "HydraBuildResult", "Hydra"]

AlignmentStrategy = Literal["deterministic", "sampling"]
SolveMode = Literal["exact", "soft"]


@dataclass
class RelationBuildInfo:
    """Build statistics of one relation (one row of the demo's LP table)."""

    relation: str
    row_count: int
    num_constraints: int
    num_regions: int
    grid_variables: int | None
    partition_seconds: float
    solve_seconds: float
    status: str
    max_relative_error: float
    fallback_to_soft: bool = False

    def variable_reduction_factor(self) -> float | None:
        """How many times fewer variables than the grid baseline."""
        if self.grid_variables is None or self.num_regions == 0:
            return None
        return self.grid_variables / self.num_regions


@dataclass
class SummaryBuildReport:
    """Aggregate statistics of one summary construction run."""

    relations: dict[str, RelationBuildInfo] = field(default_factory=dict)
    total_seconds: float = 0.0
    referential: ReferentialReport = field(default_factory=ReferentialReport)

    def total_lp_variables(self) -> int:
        return sum(info.num_regions for info in self.relations.values())

    def total_grid_variables(self) -> int:
        return sum(
            info.grid_variables or 0 for info in self.relations.values()
        )

    def total_constraints(self) -> int:
        return sum(info.num_constraints for info in self.relations.values())

    def max_relative_error(self) -> float:
        if not self.relations:
            return 0.0
        return max(info.max_relative_error for info in self.relations.values())

    def describe(self) -> str:
        lines = [
            f"{'relation':<20} {'rows':>12} {'constraints':>12} {'regions':>9} "
            f"{'grid vars':>14} {'solve (s)':>10} {'max rel err':>12}"
        ]
        for info in self.relations.values():
            grid = "-" if info.grid_variables is None else str(info.grid_variables)
            lines.append(
                f"{info.relation:<20} {info.row_count:>12} {info.num_constraints:>12} "
                f"{info.num_regions:>9} {grid:>14} {info.solve_seconds:>10.4f} "
                f"{info.max_relative_error:>12.4%}"
            )
        lines.append(
            f"total: {self.total_lp_variables()} LP variables, "
            f"{self.total_constraints()} constraints, "
            f"{self.total_seconds:.3f}s wall clock"
        )
        return "\n".join(lines)


@dataclass
class HydraBuildResult:
    """The summary together with its build report."""

    summary: DatabaseSummary
    report: SummaryBuildReport

    def size_bytes(self) -> int:
        return self.summary.size_bytes()


@dataclass
class Hydra:
    """The vendor-site regeneration pipeline.

    Parameters
    ----------
    metadata:
        CODD-style metadata (schema + statistics) received from the client.
    mode:
        ``"exact"`` raises on infeasible constraint sets, ``"soft"`` minimises
        the L1 violation instead.  With ``fallback_to_soft`` (default) an
        exact-mode infeasibility automatically falls back to the soft solve
        for that relation, which mirrors HYDRA absorbing small
        inconsistencies rather than failing the whole build.
    alignment:
        ``"deterministic"`` (the paper's strategy) or ``"sampling"`` (the
        DataSynth-style baseline used by the ablation experiment).
    compute_grid_baseline:
        Also compute the grid-partitioning variable count per relation (cheap,
        used by the LP-complexity experiment).
    guided_solutions:
        In exact mode, pick — for relations that are referenced through
        foreign keys — the feasible LP solution closest (L1) to per-region
        estimates derived from the client statistics.  This keeps predicate
        overlaps of referenced relations populated, which preserves the
        feasibility of the referencing relations' constraints; disabling it
        reverts to an arbitrary vertex solution (useful for ablations).
    """

    metadata: DatabaseMetadata
    mode: SolveMode = "exact"
    alignment: AlignmentStrategy = "deterministic"
    fallback_to_soft: bool = True
    compute_grid_baseline: bool = True
    guided_solutions: bool = True
    max_regions: int = 200_000
    sampling_seed: int = 0
    row_count_overrides: dict[str, int] = field(default_factory=dict)

    # -- public API --------------------------------------------------------

    def build_summary(self, aqps: Iterable[AnnotatedQueryPlan]) -> HydraBuildResult:
        """Run the full pipeline over a workload of AQPs."""
        start = time.perf_counter()
        aqps = list(aqps)
        workload = decompose_workload(aqps, self.metadata)

        report = SummaryBuildReport()
        summary = DatabaseSummary(schema=self.metadata.schema)
        aligned: dict[str, AlignedRelation] = {}

        for table_name in self.metadata.schema.topological_order():
            table = self.metadata.schema.table(table_name)
            info, aligned_relation = self._build_relation(table, workload, aligned)
            aligned[table_name] = aligned_relation
            summary.add_relation(aligned_relation.summary)
            report.relations[table_name] = info

        report.referential = enforce_referential_integrity(summary)
        summary.validate()
        report.total_seconds = time.perf_counter() - start
        summary.build_info = {
            "mode": self.mode,
            "alignment": self.alignment,
            "total_seconds": report.total_seconds,
            "lp_variables": report.total_lp_variables(),
            "constraints": report.total_constraints(),
        }
        return HydraBuildResult(summary=summary, report=report)

    def regenerate(
        self,
        summary: DatabaseSummary,
        rate_limiter: RateLimiter | None = None,
        materialize: Iterable[str] = (),
        batch_size: int = 8192,
        shared_rate_limiter: bool = False,
        workers: int | None = None,
        min_parallel_rows: int | None = None,
    ) -> Database:
        """Create a (mostly dataless) database from a summary.

        Relations listed in ``materialize`` are materialised eagerly through
        their tuple generator; all others are attached as ``datagen``
        relations that regenerate rows on demand during query execution.
        Names that are not relations of ``summary`` raise
        :class:`~repro.core.errors.HydraError` (listing every bad name)
        instead of being silently ignored.

        ``workers`` > 1 attaches
        :class:`~repro.executor.datagen.ParallelDataGenRelation` providers
        that regenerate blocks across that many worker processes per
        relation — bit-identical output, higher tuple throughput.  ``None``
        (the default) consults the ``REPRO_WORKERS`` environment variable
        (:func:`~repro.parallel.pool.default_workers`), so an existing
        deployment can be switched to parallel regeneration without a code
        change.  ``min_parallel_rows`` keeps relations below that size on
        the serial in-process path; ``None`` picks the platform default
        (:func:`~repro.parallel.pool.default_min_parallel_rows`: 0 where
        ``fork`` is available, a few batches per worker on spawn-only
        platforms where per-scan process startup is expensive).

        ``rate_limiter`` provides the velocity configuration.  By default
        every relation gets its own fresh :meth:`~RateLimiter.clone` so each
        stream is paced independently (relation B is not slowed down as if
        relation A's rows counted against its budget); this holds for any
        ``workers`` value because a parallel relation throttles its *merged*
        stream in the consuming process, never inside workers.  Pass
        ``shared_rate_limiter=True`` for an explicit global-budget mode where
        all relations draw from the single caller-supplied limiter — with
        ``workers`` > 1 that budget likewise paces the merged streams, not
        each worker separately.
        """
        materialize_set = set(materialize)
        unknown = sorted(materialize_set - set(summary.relations))
        if unknown:
            raise HydraError(
                "cannot materialize unknown relation(s) "
                + ", ".join(repr(name) for name in unknown)
                + "; summary has: "
                + ", ".join(repr(name) for name in sorted(summary.relations))
            )
        resolved_workers = default_workers() if workers is None else max(1, int(workers))
        resolved_min_rows = (
            default_min_parallel_rows(batch_size, resolved_workers)
            if min_parallel_rows is None
            else max(0, int(min_parallel_rows))
        )
        factory = SummaryDatabaseFactory(summary=summary)
        database = Database(schema=summary.schema, providers={})
        for table_name in summary.relations:
            generator = factory.generator(table_name)
            if rate_limiter is None:
                limiter = RateLimiter.unlimited()
            elif shared_rate_limiter:
                limiter = rate_limiter
            else:
                limiter = rate_limiter.clone()
            if resolved_workers > 1:
                relation: DataGenRelation = ParallelDataGenRelation(
                    source=generator,
                    rate_limiter=limiter,
                    batch_size=batch_size,
                    workers=resolved_workers,
                    min_parallel_rows=resolved_min_rows,
                )
            else:
                relation = DataGenRelation(
                    source=generator,
                    rate_limiter=limiter,
                    batch_size=batch_size,
                )
            if table_name in materialize_set:
                table = summary.schema.table(table_name)
                database.attach(table_name, MaterializedRelation(relation.materialize(table)))
            else:
                database.attach(table_name, relation)
        return database

    def tuple_generator(self, summary: DatabaseSummary, table_name: str) -> TupleGenerator:
        """Convenience accessor for a single relation's tuple generator."""
        return SummaryDatabaseFactory(summary=summary).generator(table_name)

    # -- per-relation processing --------------------------------------------

    def _row_count(self, table_name: str) -> int:
        if table_name in self.row_count_overrides:
            return int(self.row_count_overrides[table_name])
        return self.metadata.row_count(table_name)

    def _build_relation(
        self,
        table: Table,
        workload: WorkloadConstraints,
        aligned: Mapping[str, AlignedRelation],
    ) -> tuple[RelationBuildInfo, AlignedRelation]:
        relation_constraints = workload.for_relation(table.name)
        row_count = self._row_count(table.name)
        scale = self._annotation_scale(table.name, row_count, relation_constraints.row_count)

        constraints = [
            constraint
            for constraint in relation_constraints.deduplicated()
            if not constraint.predicate.is_trivial
        ]

        grounded_boxes: list[BoxCondition] = []
        cardinalities: list[int] = []
        labels: list[str] = []
        for constraint in constraints:
            grounded_boxes.append(self._ground(constraint.predicate, table, aligned))
            cardinalities.append(int(round(constraint.cardinality * scale)))
            labels.append(constraint.source)

        # Borrowed (tracking) predicates shape the partition but add no LP row:
        # they are appended after the constraint boxes so constraint indices
        # keep matching the LP rows.
        tracking_boxes = [
            self._ground(predicate, table, aligned)
            for predicate in relation_constraints.tracking
        ]
        partition_boxes = grounded_boxes + [
            box for box in tracking_boxes if box not in grounded_boxes
        ]

        domain = self._domain_box(table, aligned)
        discrete = {column.name: column.dtype.is_discrete for column in table.columns}

        partition_start = time.perf_counter()
        partitioner = RegionPartitioner(
            discrete=discrete, domain=domain, max_regions=self.max_regions
        )
        regions = partitioner.partition(partition_boxes)
        partition_seconds = time.perf_counter() - partition_start

        problem = build_lp(
            relation=table.name,
            regions=regions,
            cardinalities=cardinalities,
            constraint_labels=labels,
            row_count=row_count,
        )

        # Statistics-guided solution selection is applied to *referenced*
        # relations only: that is where an arbitrary vertex solution can empty
        # out predicate overlaps and break the feasibility of referencing
        # relations.  Relations nothing points at (the fact tables) keep the
        # sparse vertex solution, which also keeps their summaries minuscule.
        targets = None
        is_referenced = bool(self.metadata.schema.referencing_tables(table.name))
        if self.mode == "exact" and self.guided_solutions and is_referenced:
            targets = self._region_targets(table, regions, row_count, aligned)

        fallback = False
        solver = LPSolver(mode=self.mode)
        try:
            solution = solver.solve(problem, targets=targets)
        except InfeasibleConstraintsError:
            if self.mode == "exact" and self.fallback_to_soft:
                fallback = True
                solution = LPSolver(mode="soft").solve(problem)
            else:
                raise

        aligner = self._make_aligner(table)
        ref_row_counts = {
            name: relation.total_rows for name, relation in aligned.items()
        }
        aligned_relation = aligner.align(
            table=table,
            regions=regions,
            counts=solution.integral_counts,
            ref_row_counts=ref_row_counts,
            domain=domain,
        )

        grid_vars = (
            grid_variable_count(grounded_boxes, domain)
            if self.compute_grid_baseline
            else None
        )
        info = RelationBuildInfo(
            relation=table.name,
            row_count=row_count,
            num_constraints=len(constraints),
            num_regions=len(regions),
            grid_variables=grid_vars,
            partition_seconds=partition_seconds,
            solve_seconds=solution.solve_seconds,
            status=solution.status,
            max_relative_error=solution.max_relative_error,
            fallback_to_soft=fallback,
        )
        return info, aligned_relation

    def _annotation_scale(self, table_name: str, target_rows: int, metadata_rows: int) -> float:
        """Scale factor applied to constraint cardinalities.

        When the caller overrides a relation's row count (scenario scaling),
        the workload's absolute cardinalities are scaled proportionally so the
        constraint set remains consistent — this is how the demo's
        "extrapolated exabyte scenario" is modelled.
        """
        del table_name
        if metadata_rows <= 0:
            return 1.0
        if target_rows == metadata_rows:
            return 1.0
        return target_rows / metadata_rows

    def _make_aligner(self, table: Table):
        statistics = self.metadata.statistics.get(table.name)
        if self.alignment == "sampling":
            return SamplingAligner(statistics=statistics, seed=self.sampling_seed)
        return DeterministicAligner(statistics=statistics)

    # -- statistics-guided region targets --------------------------------------

    def _region_targets(
        self,
        table: Table,
        regions: Sequence,
        row_count: int,
        aligned: Mapping[str, AlignedRelation],
    ) -> np.ndarray:
        """Per-region row-count estimates from the client statistics.

        Each region's expected size is ``row_count`` times the product of its
        per-column selectivities, estimated per column from the client's
        MCV/histogram statistics (value columns) or uniformly over the
        regenerated referenced relation (foreign-key columns) — the usual
        attribute-independence assumption.  The estimates are normalised to
        sum to the relation's row count.
        """
        statistics = self.metadata.statistics.get(table.name)
        fk_totals = {
            fk.column: float(
                aligned[fk.ref_table].total_rows
                if fk.ref_table in aligned
                else self._row_count(fk.ref_table)
            )
            for fk in table.foreign_keys
        }
        estimates = np.zeros(len(regions), dtype=np.float64)
        for region in regions:
            fraction = 0.0
            for box in region.boxes:
                piece = 1.0
                for column, intervals in box.conditions.items():
                    if column in fk_totals and fk_totals[column] > 0:
                        bounded = intervals.intersect(
                            IntervalSet([Interval(0.0, fk_totals[column])])
                        )
                        piece *= min(1.0, bounded.count_integers() / fk_totals[column])
                    elif statistics is not None and column in statistics.columns:
                        piece *= statistics.columns[column].estimate_intervals_fraction(
                            intervals
                        )
                    # Columns without statistics contribute no information.
                    if piece == 0.0:
                        break
                fraction += piece
            estimates[region.index] = fraction
        total = estimates.sum()
        if total <= 0:
            return np.full(len(regions), row_count / max(len(regions), 1))
        return estimates * (row_count / total)

    # -- grounding -----------------------------------------------------------

    def _ground(
        self,
        predicate: SymbolicPredicate,
        table: Table,
        aligned: Mapping[str, AlignedRelation],
    ) -> BoxCondition:
        """Ground a symbolic predicate into a box over the relation's columns.

        Conditions borrowed through foreign keys are translated into pk-index
        interval sets using the already-aligned referenced relations.
        """
        box = predicate.box
        for fk_column, referenced in predicate.references:
            if referenced.table not in aligned:
                raise InfeasibleConstraintsError(
                    table.name,
                    f"referenced relation {referenced.table!r} has not been aligned yet "
                    "(foreign-key graph is not being processed in topological order)",
                )
            ref_relation = aligned[referenced.table]
            ref_table = self.metadata.schema.table(referenced.table)
            ref_box = self._ground(referenced.predicate, ref_table, aligned)
            intervals = ref_relation.pk_intervals_matching(ref_box)
            box = box.with_condition(fk_column, intervals)
        return box

    # -- domains -------------------------------------------------------------

    def _domain_box(
        self, table: Table, aligned: Mapping[str, AlignedRelation]
    ) -> BoxCondition:
        """Domain bounds per column: statistics for value columns, pk-index
        range of the referenced relation for foreign-key columns."""
        conditions: dict[str, IntervalSet] = {}
        statistics = self.metadata.statistics.get(table.name)
        for column in table.columns:
            if column.name == table.primary_key:
                continue
            fk = table.foreign_key_for(column.name)
            if fk is not None:
                if fk.ref_table in aligned:
                    upper = float(aligned[fk.ref_table].total_rows)
                else:
                    upper = float(self._row_count(fk.ref_table))
                conditions[column.name] = IntervalSet([Interval(0.0, max(upper, 1.0))])
                continue
            if statistics is None or column.name not in statistics.columns:
                continue
            column_stats = statistics.columns[column.name]
            if column_stats.min_value is None or column_stats.max_value is None:
                continue
            low = float(column_stats.min_value)
            high = float(column_stats.max_value)
            padding = 1.0 if column.dtype.is_discrete else max(abs(high), 1.0) * 1e-9
            conditions[column.name] = IntervalSet([Interval(low, high + padding)])
        return BoxCondition(conditions)


def constraint_count(constraints: Iterable[CardinalityConstraint]) -> int:
    """Number of non-trivial constraints (helper shared by benchmarks)."""
    return sum(1 for constraint in constraints if not constraint.predicate.is_trivial)


def scale_row_counts(metadata: DatabaseMetadata, factor: float) -> dict[str, int]:
    """Row-count overrides scaling every relation by ``factor``."""
    return {
        name: max(1, int(round(stats.row_count * factor)))
        for name, stats in metadata.statistics.items()
    }


def rounded_counts(counts: np.ndarray) -> np.ndarray:
    """Re-exported rounding helper (kept for API stability of benchmarks)."""
    from .solver import round_preserving_total

    return round_preserving_total(counts)
