"""The end-to-end HYDRA vendor pipeline.

``Hydra`` wires together the components of the paper's architecture
(Figure 2) on the vendor side:

    AQPs + metadata
        → Preprocessor (per-relation constraint decomposition)
        → LP Formulator (region partitioning, one LP per relation)
        → LP solver (SciPy/HiGHS standing in for Z3)
        → Summary Generator (deterministic alignment)
        → referential-integrity post-processing
        → database summary
        → Tuple Generator / datagen scan (dynamic regeneration)

Relations are processed in topological order of the foreign-key graph so that
borrowed predicates can be grounded against the already-aligned referenced
relations.  The pipeline records per-relation build statistics (LP size,
solve time, residual errors, grid-baseline complexity) — the numbers the
demo's vendor interface tabulates and that the benchmarks report.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Literal, Mapping, Sequence

import numpy as np
from numpy.typing import NDArray

from ..catalog.metadata import DatabaseMetadata
from ..catalog.schema import Table
from ..executor.datagen import DataGenRelation, ParallelDataGenRelation
from ..executor.rate import RateLimiter
from ..parallel.pool import default_min_parallel_rows, default_workers
from ..plans.aqp import AnnotatedQueryPlan
from ..sql.predicates import BoxCondition, Interval, IntervalSet
from ..storage.database import Database, MaterializedRelation
from ..telemetry.profile import profile_stage
from ..telemetry.session import add_counter, observe, span
from .alignment import AlignedRelation, DeterministicAligner
from .constraints import CardinalityConstraint, RelationConstraints, SymbolicPredicate
from .errors import HydraError, InfeasibleConstraintsError
from .grid import grid_variable_count
from .lp import LPProblem, build_lp
from .preprocessor import WorkloadConstraints, decompose_workload
from .refint import ReferentialReport, enforce_referential_integrity
from .regions import PartitionCheckpoint, Region, RegionPartitioner
from .sampling import SamplingAligner
from .solver import LPSolution, LPSolver
from .summary import DatabaseSummary, RelationSummary
from .tuplegen import SummaryDatabaseFactory, TupleGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only (sinks imports this module)
    from ..sinks.base import Sink

__all__ = [
    "RelationBuildInfo",
    "RelationBuildState",
    "SummaryBuildReport",
    "HydraBuildResult",
    "Hydra",
    "summary_relation_providers",
]

EXTENSION_STATE_VERSION = 1

AlignmentStrategy = Literal["deterministic", "sampling"]
SolveMode = Literal["exact", "soft"]


@dataclass
class RelationBuildInfo:
    """Build statistics of one relation (one row of the demo's LP table).

    ``reused`` marks relations an incremental :meth:`Hydra.extend_summary`
    left untouched (their statistics are carried over from the base build);
    ``warm_start`` marks re-solved relations whose partition, targets or LP
    solution were warm-started from the previous build state.
    """

    relation: str
    row_count: int
    num_constraints: int
    num_regions: int
    grid_variables: int | None
    partition_seconds: float
    solve_seconds: float
    status: str
    max_relative_error: float
    fallback_to_soft: bool = False
    reused: bool = False
    warm_start: bool = False

    def variable_reduction_factor(self) -> float | None:
        """How many times fewer variables than the grid baseline."""
        if self.grid_variables is None or self.num_regions == 0:
            return None
        return self.grid_variables / self.num_regions


@dataclass
class SummaryBuildReport:
    """Aggregate statistics of one summary construction run."""

    relations: dict[str, RelationBuildInfo] = field(default_factory=dict)
    total_seconds: float = 0.0
    referential: ReferentialReport = field(default_factory=ReferentialReport)

    def total_lp_variables(self) -> int:
        """Total LP variables (= regions) across all relations."""
        return sum(info.num_regions for info in self.relations.values())

    def total_grid_variables(self) -> int:
        """Total grid-baseline variables (0 for relations without a baseline)."""
        return sum(
            info.grid_variables or 0 for info in self.relations.values()
        )

    def total_constraints(self) -> int:
        """Total cardinality constraints across all relations."""
        return sum(info.num_constraints for info in self.relations.values())

    def max_relative_error(self) -> float:
        """Worst per-relation residual error of the build (0.0 when empty)."""
        if not self.relations:
            return 0.0
        return max(info.max_relative_error for info in self.relations.values())

    def resolved_relations(self) -> list[str]:
        """Relations this run actually re-solved (all of them on a cold build)."""
        return [name for name, info in self.relations.items() if not info.reused]

    def reused_relations(self) -> list[str]:
        """Relations an incremental run carried over untouched."""
        return [name for name, info in self.relations.items() if info.reused]

    def describe(self) -> str:
        """Render the per-relation build table (the demo's LP statistics view)."""
        lines = [
            f"{'relation':<20} {'rows':>12} {'constraints':>12} {'regions':>9} "
            f"{'grid vars':>14} {'solve (s)':>10} {'max rel err':>12}"
        ]
        for info in self.relations.values():
            grid = "-" if info.grid_variables is None else str(info.grid_variables)
            flag = " (reused)" if info.reused else (" (warm)" if info.warm_start else "")
            lines.append(
                f"{info.relation:<20} {info.row_count:>12} {info.num_constraints:>12} "
                f"{info.num_regions:>9} {grid:>14} {info.solve_seconds:>10.4f} "
                f"{info.max_relative_error:>12.4%}{flag}"
            )
        lines.append(
            f"total: {self.total_lp_variables()} LP variables, "
            f"{self.total_constraints()} constraints, "
            f"{self.total_seconds:.3f}s wall clock"
        )
        return "\n".join(lines)


@dataclass
class RelationBuildState:
    """Everything a later incremental build can warm-start from.

    Captured per relation by :meth:`Hydra.build_summary` (and refreshed by
    :meth:`Hydra.extend_summary`): the partition checkpoint and its regions,
    the domain box the partition ran under, signatures of the constraint and
    tracking-predicate sets (the inputs of constraint diffing), plus the LP
    problem/targets/solution for the provably-identical-reuse fast path.
    """

    checkpoint: PartitionCheckpoint
    regions: list[Region]
    domain: BoxCondition
    constraint_signature: tuple
    tracking_signature: tuple
    row_count: int
    problem: LPProblem | None = None
    targets: NDArray[Any] | None = None
    solution: LPSolution | None = None
    fallback: bool = False
    # Checkpoint taken after the grounded constraint boxes, before the
    # trailing tracking boxes.  A delta that appends a constraint inserts its
    # box *between* those groups, so the final checkpoint stops being a
    # prefix — this boundary checkpoint still is, and keeps the partition
    # warm start engaged for tracking-bearing relations.
    grounded_checkpoint: PartitionCheckpoint | None = None

    @property
    def partition_boxes(self) -> tuple[BoxCondition, ...]:
        """The full box sequence the relation's partition was built from."""
        return self.checkpoint.boxes


@dataclass
class HydraBuildResult:
    """The summary together with its build report.

    ``aqps``, ``aligned`` and ``states`` carry the extension state that
    :meth:`Hydra.extend_summary` needs to refresh the summary under a delta
    workload without rebuilding untouched relations.  They stay in vendor
    memory; :meth:`attach_extension_state` serialises the durable part into
    ``summary.extension_state`` so a later session can
    :meth:`Hydra.restore_result` from the summary JSON alone.
    """

    summary: DatabaseSummary
    report: SummaryBuildReport
    aqps: list[AnnotatedQueryPlan] = field(default_factory=list)
    aligned: dict[str, AlignedRelation] = field(default_factory=dict)
    states: dict[str, RelationBuildState] = field(default_factory=dict)

    def size_bytes(self) -> int:
        """Serialised size of the built summary (the "few KB" metric)."""
        return self.summary.size_bytes()

    @property
    def supports_extension(self) -> bool:
        """Whether this result carries the state incremental maintenance needs."""
        return bool(self.states) and bool(self.aligned)

    def extension_state(self, package_fingerprint: str | None = None) -> dict[str, Any]:
        """The JSON-serialisable extension state of this build."""
        if not self.supports_extension:
            raise HydraError(
                "build result carries no extension state; it was constructed "
                "without the per-relation build states"
            )
        state: dict[str, Any] = {
            "format_version": EXTENSION_STATE_VERSION,
            "aqps": [aqp.to_dict() for aqp in self.aqps],
            "relations": {
                name: {
                    "partition_boxes": [
                        box.to_dict() for box in relation_state.partition_boxes
                    ],
                    "counts": [int(count) for count in self.aligned[name].counts],
                    # The row count this relation was built for: restore keeps
                    # it as the diffing baseline, so metadata drift between
                    # vendor sessions marks the relation as touched instead of
                    # being silently absorbed by a recomputed signature.
                    "row_count": int(relation_state.row_count),
                }
                for name, relation_state in self.states.items()
            },
        }
        if package_fingerprint:
            state["package_fingerprint"] = package_fingerprint
        return state

    def attach_extension_state(self, package_fingerprint: str | None = None) -> None:
        """Embed the extension state into the summary (survives save/load)."""
        self.summary.extension_state = self.extension_state(package_fingerprint)


@dataclass
class Hydra:
    """The vendor-site regeneration pipeline.

    Parameters
    ----------
    metadata:
        CODD-style metadata (schema + statistics) received from the client.
    mode:
        ``"exact"`` raises on infeasible constraint sets, ``"soft"`` minimises
        the L1 violation instead.  With ``fallback_to_soft`` (default) an
        exact-mode infeasibility automatically falls back to the soft solve
        for that relation, which mirrors HYDRA absorbing small
        inconsistencies rather than failing the whole build.
    alignment:
        ``"deterministic"`` (the paper's strategy) or ``"sampling"`` (the
        DataSynth-style baseline used by the ablation experiment).
    compute_grid_baseline:
        Also compute the grid-partitioning variable count per relation (cheap,
        used by the LP-complexity experiment).
    guided_solutions:
        In exact mode, pick — for relations that are referenced through
        foreign keys — the feasible LP solution closest (L1) to per-region
        estimates derived from the client statistics.  This keeps predicate
        overlaps of referenced relations populated, which preserves the
        feasibility of the referencing relations' constraints; disabling it
        reverts to an arbitrary vertex solution (useful for ablations).
    """

    metadata: DatabaseMetadata
    mode: SolveMode = "exact"
    alignment: AlignmentStrategy = "deterministic"
    fallback_to_soft: bool = True
    compute_grid_baseline: bool = True
    guided_solutions: bool = True
    max_regions: int = 200_000
    sampling_seed: int = 0
    row_count_overrides: dict[str, int] = field(default_factory=dict)

    # -- public API --------------------------------------------------------

    def build_summary(self, aqps: Iterable[AnnotatedQueryPlan]) -> HydraBuildResult:
        """Run the full pipeline over a workload of AQPs."""
        start = time.perf_counter()
        aqps = list(aqps)
        with span("hydra.build_summary", queries=len(aqps)), profile_stage("build_summary"):
            workload = decompose_workload(aqps, self.metadata)

            report = SummaryBuildReport()
            summary = DatabaseSummary(schema=self.metadata.schema)
            aligned: dict[str, AlignedRelation] = {}
            states: dict[str, RelationBuildState] = {}

            for table_name in self.metadata.schema.topological_order():
                table = self.metadata.schema.table(table_name)
                info, aligned_relation, state = self._build_relation(table, workload, aligned)
                aligned[table_name] = aligned_relation
                states[table_name] = state
                summary.add_relation(aligned_relation.summary)
                report.relations[table_name] = info
                add_counter("pipeline.relations_built")

            with span("hydra.referential_integrity"):
                report.referential = enforce_referential_integrity(summary)
            summary.validate()
            report.total_seconds = time.perf_counter() - start
            summary.build_info = {
                "mode": self.mode,
                "alignment": self.alignment,
                "total_seconds": report.total_seconds,
                "lp_variables": report.total_lp_variables(),
                "constraints": report.total_constraints(),
            }
        return HydraBuildResult(
            summary=summary, report=report, aqps=aqps, aligned=aligned, states=states
        )

    def extend_summary(
        self,
        result: HydraBuildResult,
        new_aqps: Iterable[AnnotatedQueryPlan],
        reuse_feasible_solutions: bool = False,
    ) -> HydraBuildResult:
        """Incrementally refresh a summary under a delta workload.

        The vendor keeps receiving AQPs from the client; instead of
        re-running the whole pipeline over the union workload, this method

        1. decomposes the union workload and *diffs* every relation's
           constraint and tracking-predicate signatures against the base
           build (``result``),
        2. closes the touched set transitively over foreign-key referencing
           edges (a re-solved relation realigns its pk index space, so every
           relation grounding predicates through it must re-solve too),
        3. re-solves **only** the touched relations — warm-starting the
           region partition from the base build's checkpoint when the delta
           appends predicates, reusing cached statistics targets when the
           partition is unchanged, and skipping the LP solve entirely when
           the re-derived problem is provably the one already solved — and
        4. splices the refreshed relation summaries into the base summary
           (version bumped), leaving untouched relations' summary rows — and
           therefore their regenerated tuple streams — bit-identical.

        The default path is equivalent to ``build_summary`` over the union
        workload: touched relations go through the exact same computation, so
        the regenerated database matches a from-scratch union build
        bit-for-bit.  ``reuse_feasible_solutions=True`` additionally keeps a
        touched relation's *previous* LP solution whenever it still satisfies
        the extended constraint set exactly (``"warm-reused"``), which keeps
        already-shipped tuple streams stable but may then differ from what a
        cold solve would have picked.

        ``result`` must come from :meth:`build_summary`,
        :meth:`extend_summary` or :meth:`restore_result` of a Hydra with the
        same configuration (mode, alignment, row-count overrides).
        """
        with span("hydra.extend_summary"), profile_stage("extend_summary"):
            return self._extend_summary_impl(result, new_aqps, reuse_feasible_solutions)

    def _extend_summary_impl(
        self,
        result: HydraBuildResult,
        new_aqps: Iterable[AnnotatedQueryPlan],
        reuse_feasible_solutions: bool,
    ) -> HydraBuildResult:
        start = time.perf_counter()
        new_aqps = list(new_aqps)
        if not result.supports_extension:
            raise HydraError(
                "build result carries no extension state; use build_summary, "
                "or restore_result on a summary saved with extension state"
            )
        # Deduplicate replayed AQPs by content: a delta batch that is retried
        # (or a full package replayed against its own summary) must not grow
        # the stored workload — otherwise the persisted extension state and
        # the union-package fingerprint drift on every replay even though the
        # summary itself is unchanged.
        seen = {self._aqp_key(aqp) for aqp in result.aqps}
        appended: list[AnnotatedQueryPlan] = []
        for aqp in new_aqps:
            key = self._aqp_key(aqp)
            if key in seen:
                continue
            seen.add(key)
            appended.append(aqp)
        union_aqps = [*result.aqps, *appended]
        workload = decompose_workload(union_aqps, self.metadata)
        touched = self._touched_relations(result, workload)

        report = SummaryBuildReport()
        aligned: dict[str, AlignedRelation] = {}
        states: dict[str, RelationBuildState] = {}
        replacements: dict[str, RelationSummary] = {}

        for table_name in self.metadata.schema.topological_order():
            if table_name not in touched:
                aligned[table_name] = result.aligned[table_name]
                states[table_name] = result.states[table_name]
                previous_info = result.report.relations.get(table_name)
                if previous_info is not None:
                    report.relations[table_name] = replace(previous_info, reused=True)
                add_counter("pipeline.relations_reused")
                continue
            table = self.metadata.schema.table(table_name)
            warm_counts = None
            if reuse_feasible_solutions and table_name in result.aligned:
                warm_counts = result.aligned[table_name].counts
            info, aligned_relation, state = self._build_relation(
                table,
                workload,
                aligned,
                prev_state=result.states.get(table_name),
                warm_counts=warm_counts,
            )
            aligned[table_name] = aligned_relation
            states[table_name] = state
            report.relations[table_name] = info
            replacements[table_name] = aligned_relation.summary
            add_counter("pipeline.relations_resolved")

        if replacements:
            summary = result.summary.splice(replacements)
            # Restricted to the re-solved relations: the untouched ones share
            # their row objects with the base summary and must never be
            # mutated by this pass (see enforce_referential_integrity).
            report.referential = enforce_referential_integrity(
                summary, only=replacements
            )
            summary.validate()
            report.total_seconds = time.perf_counter() - start
            summary.build_info = {
                "mode": self.mode,
                "alignment": self.alignment,
                "total_seconds": report.total_seconds,
                "lp_variables": report.total_lp_variables(),
                "constraints": report.total_constraints(),
                "extended": True,
                "delta_queries": len(appended),
                "resolved_relations": sorted(replacements),
            }
        else:
            # The delta added nothing new (or was empty): the base summary is
            # reused as-is, build_info untouched.
            summary = result.summary
            report.referential = result.report.referential
            report.total_seconds = time.perf_counter() - start
        return HydraBuildResult(
            summary=summary,
            report=report,
            aqps=union_aqps,
            aligned=aligned,
            states=states,
        )

    @staticmethod
    def _aqp_key(aqp: AnnotatedQueryPlan) -> str:
        """Content identity of one AQP (used to drop replayed delta queries)."""
        return json.dumps(aqp.to_dict(), sort_keys=True, separators=(",", ":"))

    def touched_relations(
        self, result: HydraBuildResult, new_aqps: Iterable[AnnotatedQueryPlan]
    ) -> list[str]:
        """Relations a delta workload would force :meth:`extend_summary` to re-solve."""
        if not result.supports_extension:
            raise HydraError("build result carries no extension state")
        union_aqps = [*result.aqps, *list(new_aqps)]
        workload = decompose_workload(union_aqps, self.metadata)
        return sorted(self._touched_relations(result, workload))

    def restore_result(self, summary: DatabaseSummary) -> HydraBuildResult:
        """Rebuild extension state from a summary saved with it embedded.

        Reconstructs every relation's region partition from the persisted
        partition boxes (deterministic, no LP is solved) and re-derives the
        alignment bookkeeping that grounding needs, so incremental
        maintenance can resume across vendor sessions from the summary JSON
        alone.  The Hydra configuration must match the one that produced the
        summary.
        """
        payload = summary.extension_state
        if not payload:
            raise HydraError(
                "summary carries no extension state; rebuild it with "
                "build_summary and attach_extension_state before saving"
            )
        version = payload.get("format_version")
        if version != EXTENSION_STATE_VERSION:
            raise HydraError(f"unsupported extension-state version {version!r}")
        aqps = [AnnotatedQueryPlan.from_dict(item) for item in payload.get("aqps", [])]
        workload = decompose_workload(aqps, self.metadata)
        relation_payloads = payload.get("relations", {})

        report = SummaryBuildReport()
        aligned: dict[str, AlignedRelation] = {}
        states: dict[str, RelationBuildState] = {}
        for table_name in self.metadata.schema.topological_order():
            if table_name not in relation_payloads:
                raise HydraError(f"extension state lacks relation {table_name!r}")
            relation_payload = relation_payloads[table_name]
            table = self.metadata.schema.table(table_name)
            boxes = [
                BoxCondition.from_dict(item)
                for item in relation_payload.get("partition_boxes", [])
            ]
            counts = np.asarray(relation_payload.get("counts", []), dtype=np.int64)
            domain = self._domain_box(table, aligned)
            discrete = {
                column.name: column.dtype.is_discrete for column in table.columns
            }
            relation_constraints = workload.for_relation(table_name)
            row_count, constraints, _cardinalities, signature = (
                self._relation_signatures(table_name, relation_constraints)
            )
            # The diffing baseline is the row count the summary was *built*
            # for, not the one the current metadata reports: if they differ
            # (client data drifted between sessions), the touched-set diff
            # must flag the relation rather than compare new-vs-new.
            row_count = int(relation_payload.get("row_count", row_count))
            # Rebuild through the grounded/tracking boundary so the restored
            # state carries both warm-start checkpoints, exactly like a live
            # build (grounded boxes lead, one per non-trivial constraint).
            boundary = min(len(constraints), len(boxes))
            partitioner = RegionPartitioner(
                discrete=discrete, domain=domain, max_regions=self.max_regions
            )
            grounded_checkpoint = partitioner.advance(None, boxes[:boundary])
            regions = partitioner.resume(grounded_checkpoint, boxes[boundary:])
            if counts.shape != (len(regions),):
                raise HydraError(
                    f"extension state of {table_name!r} is stale: "
                    f"{counts.size} counts for {len(regions)} regions"
                )
            aligner = self._make_aligner(table)
            ref_row_counts = {
                name: relation.total_rows for name, relation in aligned.items()
            }
            aligned_relation = aligner.align(
                table=table,
                regions=regions,
                counts=counts,
                ref_row_counts=ref_row_counts,
                domain=domain,
            )
            if aligned_relation.total_rows != summary.relation(table_name).total_rows:
                raise HydraError(
                    f"extension state of {table_name!r} is stale: restored "
                    f"{aligned_relation.total_rows} rows, summary has "
                    f"{summary.relation(table_name).total_rows}"
                )
            states[table_name] = RelationBuildState(
                checkpoint=partitioner.last_checkpoint,
                regions=regions,
                domain=domain,
                constraint_signature=signature,
                tracking_signature=tuple(relation_constraints.tracking),
                row_count=row_count,
                grounded_checkpoint=grounded_checkpoint,
            )
            aligned[table_name] = aligned_relation
            report.relations[table_name] = RelationBuildInfo(
                relation=table_name,
                row_count=row_count,
                num_constraints=len(constraints),
                num_regions=len(regions),
                grid_variables=None,
                partition_seconds=0.0,
                solve_seconds=0.0,
                status="restored",
                max_relative_error=0.0,
                reused=True,
            )
        return HydraBuildResult(
            summary=summary, report=report, aqps=aqps, aligned=aligned, states=states
        )

    def regenerate(
        self,
        summary: DatabaseSummary,
        rate_limiter: RateLimiter | None = None,
        materialize: Iterable[str] = (),
        batch_size: int = 8192,
        shared_rate_limiter: bool = False,
        workers: int | None = None,
        min_parallel_rows: int | None = None,
        sink: "Sink | None" = None,
    ) -> Database:
        """Create a (mostly dataless) database from a summary.

        Relations listed in ``materialize`` are materialised eagerly through
        their tuple generator; all others are attached as ``datagen``
        relations that regenerate rows on demand during query execution.
        Names that are not relations of ``summary`` raise
        :class:`~repro.core.errors.HydraError` (listing every bad name)
        instead of being silently ignored.

        ``sink`` additionally streams **every** relation's regenerated block
        stream through a :class:`~repro.sinks.base.Sink` (CSV, SQLite,
        Parquet, ...), writing a deployable export without ever holding a
        relation in memory; the sink is finalized (its ``MANIFEST.json``
        written) before this method returns.  The export drain runs on its
        own provider set — with per-relation limiter clones it does not
        consume the attached providers' rate budget, so query-time pacing is
        unaffected (under ``shared_rate_limiter=True`` the export draws from
        the one global budget, as every stream does).  Use
        :func:`repro.sinks.export_summary` when only the export — not the
        queryable :class:`~repro.storage.database.Database` — is needed.

        ``workers`` > 1 attaches
        :class:`~repro.executor.datagen.ParallelDataGenRelation` providers
        that regenerate blocks across that many worker processes per
        relation — bit-identical output, higher tuple throughput.  ``None``
        (the default) consults the ``REPRO_WORKERS`` environment variable
        (:func:`~repro.parallel.pool.default_workers`), so an existing
        deployment can be switched to parallel regeneration without a code
        change.  ``min_parallel_rows`` keeps relations below that size on
        the serial in-process path; ``None`` picks the platform default
        (:func:`~repro.parallel.pool.default_min_parallel_rows`: 0 where
        ``fork`` is available, a few batches per worker on spawn-only
        platforms where per-scan process startup is expensive).

        ``rate_limiter`` provides the velocity configuration.  By default
        every relation gets its own fresh :meth:`~RateLimiter.clone` so each
        stream is paced independently (relation B is not slowed down as if
        relation A's rows counted against its budget); this holds for any
        ``workers`` value because a parallel relation throttles its *merged*
        stream in the consuming process, never inside workers.  Pass
        ``shared_rate_limiter=True`` for an explicit global-budget mode where
        all relations draw from the single caller-supplied limiter — with
        ``workers`` > 1 that budget likewise paces the merged streams, not
        each worker separately.
        """
        materialize_set = set(materialize)
        unknown = sorted(materialize_set - set(summary.relations))
        if unknown:
            raise HydraError(
                "cannot materialize unknown relation(s) "
                + ", ".join(repr(name) for name in unknown)
                + "; summary has: "
                + ", ".join(repr(name) for name in sorted(summary.relations))
            )
        with span("hydra.regenerate", materialized=len(materialize_set)), profile_stage(
            "regenerate"
        ):
            return self._regenerate_impl(
                summary,
                materialize_set,
                rate_limiter,
                batch_size,
                shared_rate_limiter,
                workers,
                min_parallel_rows,
                sink,
            )

    def _regenerate_impl(
        self,
        summary: DatabaseSummary,
        materialize_set: set[str],
        rate_limiter: RateLimiter | None,
        batch_size: int,
        shared_rate_limiter: bool,
        workers: int | None,
        min_parallel_rows: int | None,
        sink: "Sink | None",
    ) -> Database:
        if sink is not None:
            # Imported lazily: repro.sinks imports this module at package
            # init, so a module-level import back would be circular.  The
            # export drives its *own* providers (per-relation limiter clones,
            # or the caller's single limiter under shared_rate_limiter), so
            # the providers attached below start with fresh pacing state —
            # query-time streams are throttled exactly as without a sink.
            from ..sinks.export import export_summary

            export_summary(
                summary,
                sink,
                rate_limiter=rate_limiter,
                batch_size=batch_size,
                shared_rate_limiter=shared_rate_limiter,
                workers=workers,
                min_parallel_rows=min_parallel_rows,
            )
        database = Database(schema=summary.schema, providers={})
        for table_name, relation in summary_relation_providers(
            summary,
            rate_limiter=rate_limiter,
            batch_size=batch_size,
            shared_rate_limiter=shared_rate_limiter,
            workers=workers,
            min_parallel_rows=min_parallel_rows,
        ):
            table = summary.schema.table(table_name)
            if table_name in materialize_set:
                with span("regen.materialize", relation=table_name):
                    database.attach(
                        table_name, MaterializedRelation(relation.materialize(table))
                    )
            else:
                database.attach(table_name, relation)
        return database

    def tuple_generator(self, summary: DatabaseSummary, table_name: str) -> TupleGenerator:
        """Convenience accessor for a single relation's tuple generator."""
        return SummaryDatabaseFactory(summary=summary).generator(table_name)

    # -- per-relation processing --------------------------------------------

    def _row_count(self, table_name: str) -> int:
        if table_name in self.row_count_overrides:
            return int(self.row_count_overrides[table_name])
        return self.metadata.row_count(table_name)

    def _relation_signatures(
        self, table_name: str, relation_constraints: RelationConstraints
    ) -> tuple[int, list[CardinalityConstraint], list[int], tuple]:
        """Shared constraint-diffing inputs of one relation.

        Returns ``(row_count, constraints, scaled_cardinalities, signature)``
        where ``signature`` is the hashable (predicate, cardinality) tuple the
        incremental pipeline compares across builds — two builds with equal
        signatures (and equal tracking predicates, domains and referenced
        alignments) derive the identical LP.
        """
        row_count = self._row_count(table_name)
        scale = self._annotation_scale(
            table_name, row_count, relation_constraints.row_count
        )
        constraints = [
            constraint
            for constraint in relation_constraints.deduplicated()
            if not constraint.predicate.is_trivial
        ]
        cardinalities = [
            int(round(constraint.cardinality * scale)) for constraint in constraints
        ]
        signature = tuple(
            (constraint.predicate, cardinality)
            for constraint, cardinality in zip(constraints, cardinalities)
        )
        return row_count, constraints, cardinalities, signature

    def _touched_relations(
        self, result: HydraBuildResult, workload: WorkloadConstraints
    ) -> set[str]:
        """Relations whose build inputs changed under the union workload.

        Directly touched: the deduplicated constraint signature or the
        tracking-predicate set differs from the base build (or no base state
        exists).  The set is then closed transitively over foreign-key
        *referencing* edges: re-solving a relation may realign its pk index
        space, which invalidates every grounded predicate other relations
        borrowed through foreign keys pointing at it.
        """
        touched: set[str] = set()
        for table in self.metadata.schema:
            state = result.states.get(table.name)
            if state is None:
                touched.add(table.name)
                continue
            relation_constraints = workload.for_relation(table.name)
            row_count, _constraints, _cardinalities, signature = (
                self._relation_signatures(table.name, relation_constraints)
            )
            if (
                signature != state.constraint_signature
                or tuple(relation_constraints.tracking) != state.tracking_signature
                or row_count != state.row_count
            ):
                touched.add(table.name)

        frontier = list(touched)
        while frontier:
            name = frontier.pop()
            for referencing_table, _fk in self.metadata.schema.referencing_tables(name):
                if referencing_table.name not in touched:
                    touched.add(referencing_table.name)
                    frontier.append(referencing_table.name)
        return touched

    @staticmethod
    def _remap_counts(
        prev_regions: Sequence[Region],
        regions: Sequence[Region],
        prev_counts: NDArray[Any],
    ) -> NDArray[Any] | None:
        """Carry per-region counts across a re-partition, matching by geometry.

        Only possible when the new predicates split nothing geometrically —
        every new region's box set then equals exactly one old region's (by
        value), and the old counts transfer one-to-one.  Returns ``None``
        whenever the correspondence is not a bijection.
        """
        if len(prev_regions) != len(regions):
            return None
        by_boxes: dict[tuple[BoxCondition, ...], int] = {}
        for region in prev_regions:
            if region.boxes in by_boxes:
                return None
            by_boxes[region.boxes] = region.index
        remapped = np.zeros(len(regions), dtype=np.int64)
        for region in regions:
            prev_index = by_boxes.get(region.boxes)
            if prev_index is None:
                return None
            remapped[region.index] = prev_counts[prev_index]
        return remapped

    def _build_relation(
        self,
        table: Table,
        workload: WorkloadConstraints,
        aligned: Mapping[str, AlignedRelation],
        prev_state: RelationBuildState | None = None,
        warm_counts: NDArray[Any] | None = None,
    ) -> tuple[RelationBuildInfo, AlignedRelation, RelationBuildState]:
        with span("solve.relation", relation=table.name) as relation_span:
            info, aligned_relation, state = self._build_relation_impl(
                table, workload, aligned, prev_state, warm_counts
            )
            relation_span.annotate(
                regions=info.num_regions,
                status=info.status,
                warm_start=info.warm_start,
            )
        return info, aligned_relation, state

    def _build_relation_impl(
        self,
        table: Table,
        workload: WorkloadConstraints,
        aligned: Mapping[str, AlignedRelation],
        prev_state: RelationBuildState | None,
        warm_counts: NDArray[Any] | None,
    ) -> tuple[RelationBuildInfo, AlignedRelation, RelationBuildState]:
        relation_constraints = workload.for_relation(table.name)
        row_count, constraints, cardinalities, constraint_signature = (
            self._relation_signatures(table.name, relation_constraints)
        )
        tracking_signature = tuple(relation_constraints.tracking)

        grounded_boxes = [
            self._ground(constraint.predicate, table, aligned)
            for constraint in constraints
        ]
        labels = [constraint.source for constraint in constraints]

        # Borrowed (tracking) predicates shape the partition but add no LP row:
        # they are appended after the constraint boxes so constraint indices
        # keep matching the LP rows.
        tracking_boxes = [
            self._ground(predicate, table, aligned)
            for predicate in relation_constraints.tracking
        ]
        partition_boxes = grounded_boxes + [
            box for box in tracking_boxes if box not in grounded_boxes
        ]

        domain = self._domain_box(table, aligned)
        discrete = {column.name: column.dtype.is_discrete for column in table.columns}

        # Warm start tier 1 — incremental partitioning: when a previous
        # build's box sequence is a prefix of the new one, resume splitting
        # from the stored checkpoint, which is bit-identical to partitioning
        # from scratch but only pays for the boxes past the prefix.  Two
        # checkpoints are candidates: the final one (covers the tracking
        # boxes too — a prefix when the delta only appends tracking
        # predicates, or changes nothing) and the grounded-boundary one (a
        # prefix when the delta appends constraint boxes, which land between
        # the constraint and tracking groups).  The partition is always built
        # through the boundary so both checkpoints exist for the next build.
        partition_start = time.perf_counter()
        partitioner = RegionPartitioner(
            discrete=discrete, domain=domain, max_regions=self.max_regions
        )
        boundary = len(grounded_boxes)
        best: PartitionCheckpoint | None = None
        if prev_state is not None and prev_state.domain == domain:
            for candidate in (prev_state.checkpoint, prev_state.grounded_checkpoint):
                if candidate is not None and candidate.is_prefix_of(partition_boxes):
                    best = candidate
                    break
        warm_partition = best is not None
        identical_partition = (
            best is not None and best.num_boxes == len(partition_boxes)
        )
        if best is not None and best.num_boxes >= boundary:
            if best.num_boxes == boundary:
                grounded_checkpoint = best
            else:
                # ``best`` is the final checkpoint; the previous boundary
                # checkpoint stays valid as long as the grounded prefix is
                # unchanged, so carry it over for the next build.
                previous_boundary = prev_state.grounded_checkpoint
                grounded_checkpoint = (
                    previous_boundary
                    if previous_boundary is not None
                    and previous_boundary.num_boxes == boundary
                    and previous_boundary.is_prefix_of(partition_boxes)
                    else None
                )
            regions = partitioner.resume(best, partition_boxes[best.num_boxes:])
        else:
            grounded_checkpoint = partitioner.advance(
                best, grounded_boxes[best.num_boxes if best is not None else 0:]
            )
            regions = partitioner.resume(grounded_checkpoint, partition_boxes[boundary:])
        partition_seconds = time.perf_counter() - partition_start
        checkpoint = partitioner.last_checkpoint
        observe("solve.partition_seconds", partition_seconds)
        if warm_partition:
            add_counter("warmstart.partition_resumed")
        if identical_partition:
            add_counter("warmstart.partition_identical")

        # Warm start tier 3 — provably identical LP: unchanged partition,
        # constraint signature and row count derive the exact problem already
        # solved, so the previous solution is reused without touching the
        # backend (a fresh deterministic solve would reproduce it).  This is
        # how a transitively-touched relation whose grounded predicates came
        # out unchanged costs almost nothing.
        if (
            identical_partition
            and prev_state is not None
            and prev_state.solution is not None
            and constraint_signature == prev_state.constraint_signature
            and row_count == prev_state.row_count
        ):
            solution = prev_state.solution
            problem = prev_state.problem
            targets = prev_state.targets
            fallback = prev_state.fallback
            solve_seconds = 0.0
            warm_solve = True
            add_counter("warmstart.lp_skipped")
        else:
            problem = build_lp(
                relation=table.name,
                regions=regions,
                cardinalities=cardinalities,
                constraint_labels=labels,
                row_count=row_count,
            )

            # Statistics-guided solution selection is applied to *referenced*
            # relations only: that is where an arbitrary vertex solution can
            # empty out predicate overlaps and break the feasibility of
            # referencing relations.  Relations nothing points at (the fact
            # tables) keep the sparse vertex solution, which also keeps their
            # summaries minuscule.  Warm start tier 2: an unchanged partition
            # derives unchanged targets, so the cached array is reused.
            targets = None
            is_referenced = bool(self.metadata.schema.referencing_tables(table.name))
            if self.mode == "exact" and self.guided_solutions and is_referenced:
                if (
                    identical_partition
                    and prev_state is not None
                    and prev_state.targets is not None
                ):
                    targets = prev_state.targets
                    add_counter("warmstart.targets_reused")
                else:
                    targets = self._region_targets(table, regions, row_count, aligned)

            # Optional warm start from the previous solution (see
            # extend_summary's reuse_feasible_solutions): remap the previous
            # integral counts onto the new region order and let the solver
            # reuse them when still exactly feasible.
            warm_candidate = None
            if warm_counts is not None and prev_state is not None:
                if identical_partition:
                    warm_candidate = np.asarray(warm_counts, dtype=np.int64)
                else:
                    warm_candidate = self._remap_counts(
                        prev_state.regions, regions, np.asarray(warm_counts)
                    )

            fallback = False
            solver = LPSolver(mode=self.mode)
            try:
                solution = solver.solve(problem, targets=targets, warm_start=warm_candidate)
            except InfeasibleConstraintsError:
                if self.mode == "exact" and self.fallback_to_soft:
                    fallback = True
                    solution = LPSolver(mode="soft").solve(problem)
                else:
                    raise
            solve_seconds = solution.solve_seconds
            warm_solve = solution.status == "warm-reused"

        aligner = self._make_aligner(table)
        ref_row_counts = {
            name: relation.total_rows for name, relation in aligned.items()
        }
        aligned_relation = aligner.align(
            table=table,
            regions=regions,
            counts=solution.integral_counts,
            ref_row_counts=ref_row_counts,
            domain=domain,
        )

        grid_vars = (
            grid_variable_count(grounded_boxes, domain)
            if self.compute_grid_baseline
            else None
        )
        info = RelationBuildInfo(
            relation=table.name,
            row_count=row_count,
            num_constraints=len(constraints),
            num_regions=len(regions),
            grid_variables=grid_vars,
            partition_seconds=partition_seconds,
            solve_seconds=solve_seconds,
            status=solution.status,
            max_relative_error=solution.max_relative_error,
            fallback_to_soft=fallback,
            warm_start=warm_partition or warm_solve,
        )
        state = RelationBuildState(
            checkpoint=checkpoint,
            regions=list(regions),
            domain=domain,
            constraint_signature=constraint_signature,
            tracking_signature=tracking_signature,
            row_count=row_count,
            problem=problem,
            targets=targets,
            solution=solution,
            fallback=fallback,
            grounded_checkpoint=grounded_checkpoint,
        )
        return info, aligned_relation, state

    def _annotation_scale(self, table_name: str, target_rows: int, metadata_rows: int) -> float:
        """Scale factor applied to constraint cardinalities.

        When the caller overrides a relation's row count (scenario scaling),
        the workload's absolute cardinalities are scaled proportionally so the
        constraint set remains consistent — this is how the demo's
        "extrapolated exabyte scenario" is modelled.
        """
        del table_name
        if metadata_rows <= 0:
            return 1.0
        if target_rows == metadata_rows:
            return 1.0
        return target_rows / metadata_rows

    def _make_aligner(self, table: Table) -> SamplingAligner | DeterministicAligner:
        statistics = self.metadata.statistics.get(table.name)
        if self.alignment == "sampling":
            return SamplingAligner(statistics=statistics, seed=self.sampling_seed)
        return DeterministicAligner(statistics=statistics)

    # -- statistics-guided region targets --------------------------------------

    def _region_targets(
        self,
        table: Table,
        regions: Sequence,
        row_count: int,
        aligned: Mapping[str, AlignedRelation],
    ) -> NDArray[Any]:
        """Per-region row-count estimates from the client statistics.

        Each region's expected size is ``row_count`` times the product of its
        per-column selectivities, estimated per column from the client's
        MCV/histogram statistics (value columns) or uniformly over the
        regenerated referenced relation (foreign-key columns) — the usual
        attribute-independence assumption.  The estimates are normalised to
        sum to the relation's row count.
        """
        statistics = self.metadata.statistics.get(table.name)
        fk_totals = {
            fk.column: float(
                aligned[fk.ref_table].total_rows
                if fk.ref_table in aligned
                else self._row_count(fk.ref_table)
            )
            for fk in table.foreign_keys
        }
        estimates = np.zeros(len(regions), dtype=np.float64)
        for region in regions:
            fraction = 0.0
            for box in region.boxes:
                piece = 1.0
                for column, intervals in box.conditions.items():
                    if column in fk_totals and fk_totals[column] > 0:
                        bounded = intervals.intersect(
                            IntervalSet([Interval(0.0, fk_totals[column])])
                        )
                        piece *= min(1.0, bounded.count_integers() / fk_totals[column])
                    elif statistics is not None and column in statistics.columns:
                        piece *= statistics.columns[column].estimate_intervals_fraction(
                            intervals
                        )
                    # Columns without statistics contribute no information.
                    if piece == 0.0:
                        break
                fraction += piece
            estimates[region.index] = fraction
        total = estimates.sum()
        if total <= 0:
            return np.full(len(regions), row_count / max(len(regions), 1))
        return estimates * (row_count / total)

    # -- grounding -----------------------------------------------------------

    def _ground(
        self,
        predicate: SymbolicPredicate,
        table: Table,
        aligned: Mapping[str, AlignedRelation],
    ) -> BoxCondition:
        """Ground a symbolic predicate into a box over the relation's columns.

        Conditions borrowed through foreign keys are translated into pk-index
        interval sets using the already-aligned referenced relations.
        """
        box = predicate.box
        for fk_column, referenced in predicate.references:
            if referenced.table not in aligned:
                raise InfeasibleConstraintsError(
                    table.name,
                    f"referenced relation {referenced.table!r} has not been aligned yet "
                    "(foreign-key graph is not being processed in topological order)",
                )
            ref_relation = aligned[referenced.table]
            ref_table = self.metadata.schema.table(referenced.table)
            ref_box = self._ground(referenced.predicate, ref_table, aligned)
            intervals = ref_relation.pk_intervals_matching(ref_box)
            box = box.with_condition(fk_column, intervals)
        return box

    # -- domains -------------------------------------------------------------

    def _domain_box(
        self, table: Table, aligned: Mapping[str, AlignedRelation]
    ) -> BoxCondition:
        """Domain bounds of every column of ``table``.

        Value columns are bounded by the client statistics; foreign-key
        columns by the pk-index range of the referenced relation.
        """
        conditions: dict[str, IntervalSet] = {}
        statistics = self.metadata.statistics.get(table.name)
        for column in table.columns:
            if column.name == table.primary_key:
                continue
            fk = table.foreign_key_for(column.name)
            if fk is not None:
                if fk.ref_table in aligned:
                    upper = float(aligned[fk.ref_table].total_rows)
                else:
                    upper = float(self._row_count(fk.ref_table))
                conditions[column.name] = IntervalSet([Interval(0.0, max(upper, 1.0))])
                continue
            if statistics is None or column.name not in statistics.columns:
                continue
            column_stats = statistics.columns[column.name]
            if column_stats.min_value is None or column_stats.max_value is None:
                continue
            low = float(column_stats.min_value)
            high = float(column_stats.max_value)
            padding = 1.0 if column.dtype.is_discrete else max(abs(high), 1.0) * 1e-9
            conditions[column.name] = IntervalSet([Interval(low, high + padding)])
        return BoxCondition(conditions)


def summary_relation_providers(
    summary: DatabaseSummary,
    rate_limiter: RateLimiter | None = None,
    batch_size: int = 8192,
    shared_rate_limiter: bool = False,
    workers: int | None = None,
    min_parallel_rows: int | None = None,
    relations: Iterable[str] | None = None,
) -> Iterator[tuple[str, DataGenRelation]]:
    """Yield one configured ``datagen`` provider per relation of ``summary``.

    This is the single place regeneration consumers (``Hydra.regenerate``,
    the streaming export driver :func:`repro.sinks.export_summary`) build
    their relation providers, so worker, batching and rate-limiting
    semantics can never drift between the queryable database and an export.
    Relations are yielded in summary order, restricted to ``relations`` when
    given (no provider is constructed for unselected ones);
    ``workers``/``min_parallel_rows`` default from the environment exactly
    like :meth:`Hydra.regenerate` (``None`` consults ``REPRO_WORKERS`` and
    the platform default).
    """
    resolved_workers = default_workers() if workers is None else max(1, int(workers))
    resolved_min_rows = (
        default_min_parallel_rows(batch_size, resolved_workers)
        if min_parallel_rows is None
        else max(0, int(min_parallel_rows))
    )
    selected = None if relations is None else set(relations)
    factory = SummaryDatabaseFactory(summary=summary)
    for table_name in summary.relations:
        if selected is not None and table_name not in selected:
            continue
        generator = factory.generator(table_name)
        if rate_limiter is None:
            limiter = RateLimiter.unlimited()
        elif shared_rate_limiter:
            limiter = rate_limiter
        else:
            limiter = rate_limiter.clone()
        if resolved_workers > 1:
            relation: DataGenRelation = ParallelDataGenRelation(
                source=generator,
                rate_limiter=limiter,
                batch_size=batch_size,
                workers=resolved_workers,
                min_parallel_rows=resolved_min_rows,
            )
        else:
            relation = DataGenRelation(
                source=generator,
                rate_limiter=limiter,
                batch_size=batch_size,
            )
        yield table_name, relation


def constraint_count(constraints: Iterable[CardinalityConstraint]) -> int:
    """Number of non-trivial constraints (helper shared by benchmarks)."""
    return sum(1 for constraint in constraints if not constraint.predicate.is_trivial)


def scale_row_counts(metadata: DatabaseMetadata, factor: float) -> dict[str, int]:
    """Row-count overrides scaling every relation by ``factor``."""
    return {
        name: max(1, int(round(stats.row_count * factor)))
        for name, stats in metadata.statistics.items()
    }


def rounded_counts(counts: NDArray[Any]) -> NDArray[Any]:
    """Re-exported rounding helper (kept for API stability of benchmarks)."""
    from .solver import round_preserving_total

    return round_preserving_total(counts)
