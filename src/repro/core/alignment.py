"""Deterministic alignment: from LP region counts to a relation summary.

This is the "Summary Generator" of the paper's architecture.  Its central
idea — the *deterministic alignment strategy* — is that the tuples of each
region are assigned a **contiguous block of primary-key indices** in a fixed
canonical region order.  Two things follow immediately:

* any predicate that was part of the partition corresponds to a union of
  whole regions, hence to a union of contiguous pk-index intervals; and
* a constraint that some *other* relation borrowed through a foreign key
  ("R.fk must reference an S-tuple satisfying Q") can therefore be grounded
  into an interval condition on the FK column, making the referencing
  relation's LP just as small and its constraints exactly satisfiable.

That is why summary construction is deterministic and exact, in contrast to
the sampling strategy of DataSynth (reproduced in :mod:`repro.core.sampling`
for the ablation experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np
from numpy.typing import NDArray

from ..catalog.schema import Table
from ..catalog.statistics import TableStatistics
from ..sql.predicates import BoxCondition, Interval, IntervalSet
from .regions import Region
from .summary import FKReference, RelationSummary, SummaryRow

__all__ = ["AlignedRelation", "DeterministicAligner"]


@dataclass
class AlignedRelation:
    """A relation's summary plus the region bookkeeping other relations need.

    The summary alone is what gets serialised and shipped; the aligned
    regions (and the per-region primary-key offsets of the deterministic
    alignment) stay in memory during pipeline execution so that referencing
    relations can ground their borrowed predicates into pk-index intervals.
    """

    table: Table
    summary: RelationSummary
    regions: list[Region]
    counts: NDArray[Any]

    def __post_init__(self) -> None:
        ordered = np.asarray(
            [max(0, int(self.counts[region.index])) for region in self.regions],
            dtype=np.int64,
        )
        self._region_starts = np.concatenate(([0], np.cumsum(ordered)))
        self._region_counts = ordered

    @property
    def total_rows(self) -> int:
        return int(self._region_starts[-1]) if len(self._region_starts) else 0

    def pk_interval_of_region(self, position: int) -> tuple[int, int]:
        """``[start, end)`` pk indices assigned to the region at ``position``."""
        return int(self._region_starts[position]), int(self._region_starts[position + 1])

    def pk_intervals_matching(self, box: BoxCondition) -> IntervalSet:
        """Union of pk-index intervals of the regions contained in ``box``.

        Exact whenever ``box`` is one of the predicates the partition was
        built from (which the pipeline guarantees for borrowed predicates).
        Regions that merely overlap the box are included conservatively so an
        unregistered probe still yields a usable superset.
        """
        intervals: list[Interval] = []
        for position, region in enumerate(self.regions):
            start, end = self.pk_interval_of_region(position)
            if end <= start:
                continue
            if region.contained_in(box) or region.overlaps(box):
                intervals.append(Interval(float(start), float(end)))
        return IntervalSet(intervals)

    def pk_interval_full(self) -> IntervalSet:
        return IntervalSet([Interval(0.0, float(self.total_rows))])


@dataclass
class DeterministicAligner:
    """Builds a :class:`RelationSummary` from regions and integral counts."""

    statistics: TableStatistics | None = None
    fill_unconstrained_from_statistics: bool = True

    def align(
        self,
        table: Table,
        regions: Sequence[Region],
        counts: NDArray[Any] | Sequence[int],
        ref_row_counts: Mapping[str, int] | None = None,
        domain: BoxCondition | None = None,
    ) -> AlignedRelation:
        """Assign contiguous pk blocks per region and emit summary rows.

        ``counts`` must be indexed by ``region.index``; ``ref_row_counts``
        gives the (regenerated) size of each referenced relation, used to
        bound FK reference intervals.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (len(regions),):
            raise ValueError("counts must have one entry per region")

        # Summary rows are emitted in canonical region order so that the
        # contiguous pk blocks implied by their counts line up with the
        # AlignedRelation's per-region offsets.  Regions the LP left empty are
        # skipped — they would only bloat the summary (the offsets are
        # unaffected because empty regions occupy zero pk positions).
        ordered = sorted(regions, key=lambda region: region.index)
        rows = [
            self._summary_row(table, region, int(counts[region.index]), ref_row_counts, domain)
            for region in ordered
            if int(counts[region.index]) > 0
        ]
        summary = RelationSummary(table=table.name, rows=rows)

        return AlignedRelation(
            table=table,
            summary=summary,
            regions=list(ordered),
            counts=counts,
        )

    # -- internals --------------------------------------------------------

    def _summary_row(
        self,
        table: Table,
        region: Region,
        count: int,
        ref_row_counts: Mapping[str, int] | None,
        domain: BoxCondition | None,
    ) -> SummaryRow:
        box = region.representative_box()
        values: dict[str, float] = {}
        fk_refs: dict[str, FKReference] = {}

        for column in table.columns:
            if column.name == table.primary_key:
                continue
            fk = table.foreign_key_for(column.name)
            condition = box.condition_for(column.name)
            if fk is not None:
                fk_refs[column.name] = self._fk_reference(
                    fk.ref_table, condition, ref_row_counts
                )
                continue
            values[column.name] = self._representative_value(
                column.name, condition, column.dtype.is_discrete, domain
            )

        return SummaryRow(count=max(0, count), values=values, fk_refs=fk_refs)

    def _fk_reference(
        self,
        ref_table: str,
        condition: IntervalSet,
        ref_row_counts: Mapping[str, int] | None,
    ) -> FKReference:
        bound = None
        if ref_row_counts is not None and ref_table in ref_row_counts:
            bound = IntervalSet([Interval(0.0, float(ref_row_counts[ref_table]))])
        intervals = condition
        if bound is not None:
            intervals = intervals.intersect(bound) if not intervals.is_everything else bound
        if intervals.is_everything:
            # No information at all about the referenced size: leave the full
            # line; referential post-processing will clamp it later.
            intervals = IntervalSet([Interval(0.0, float("inf"))])
        return FKReference(ref_table=ref_table, intervals=intervals)

    def _representative_value(
        self,
        column: str,
        condition: IntervalSet,
        discrete: bool,
        domain: BoxCondition | None,
    ) -> float:
        constrained = condition
        if domain is not None:
            domain_condition = domain.condition_for(column)
            if constrained.is_everything:
                constrained = domain_condition
            elif not domain_condition.is_everything:
                narrowed = constrained.intersect(domain_condition)
                if not narrowed.is_empty:
                    constrained = narrowed

        if constrained.is_everything or constrained.is_empty:
            return self._default_value(column)

        if self.fill_unconstrained_from_statistics and self._matches_full_domain(
            column, constrained, domain
        ):
            return self._default_value(column)

        try:
            return constrained.representative(discrete=discrete)
        except ValueError:
            return self._default_value(column)

    def _matches_full_domain(
        self, column: str, condition: IntervalSet, domain: BoxCondition | None
    ) -> bool:
        if domain is None:
            return False
        domain_condition = domain.condition_for(column)
        if domain_condition.is_everything:
            return False
        return condition == domain_condition

    def _default_value(self, column: str) -> float:
        """Value for a column the workload never constrains.

        The most common value from the client statistics keeps the
        regenerated data plausible; 0 is the documented fallback.
        """
        if self.statistics is not None and column in self.statistics.columns:
            stats = self.statistics.columns[column]
            if stats.most_common_values:
                return float(stats.most_common_values[0])
            if stats.min_value is not None:
                return float(stats.min_value)
        return 0.0
