"""Scenario construction — "what-if" synthetic AQPs (paper §4.4).

HYDRA lets the vendor pro-actively simulate anticipated client environments by
*injecting* cardinality annotations into existing AQPs (or scaling an entire
workload up to, say, an exabyte extrapolation).  Because the injected numbers
no longer come from a real execution, they may be mutually inconsistent; the
scenario layer therefore verifies feasibility — per relation, through the same
LP formulation, in soft mode — before the summary is built, and reports which
constraints cannot be met and by how much.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..catalog.metadata import DatabaseMetadata
from ..plans.aqp import AnnotatedQueryPlan
from .errors import InfeasibleConstraintsError
from .pipeline import Hydra, HydraBuildResult

__all__ = [
    "Scenario",
    "FeasibilityIssue",
    "FeasibilityReport",
    "scale_workload",
    "scale_metadata",
    "build_scenario",
    "check_feasibility",
    "check_delta_feasibility",
]


@dataclass(frozen=True)
class FeasibilityIssue:
    """One constraint a scenario cannot satisfy exactly."""

    relation: str
    constraint: str
    relative_error: float


@dataclass
class FeasibilityReport:
    """Outcome of a scenario feasibility check."""

    feasible: bool
    issues: list[FeasibilityIssue] = field(default_factory=list)
    max_relative_error: float = 0.0

    def describe(self) -> str:
        if self.feasible and not self.issues:
            return "scenario is feasible: every injected constraint can be met exactly"
        lines = [
            f"scenario is {'feasible with adjustments' if self.feasible else 'infeasible'}; "
            f"max relative error {self.max_relative_error:.2%}"
        ]
        for issue in self.issues:
            lines.append(
                f"  {issue.relation}: {issue.constraint} off by {issue.relative_error:.2%}"
            )
        return "\n".join(lines)


@dataclass
class Scenario:
    """A synthetic client environment: metadata plus (injected) AQPs."""

    name: str
    metadata: DatabaseMetadata
    aqps: list[AnnotatedQueryPlan]
    description: str = ""

    def scaled(self, factor: float, name: str | None = None) -> "Scenario":
        """Uniformly scale the scenario's data volume by ``factor``."""
        return Scenario(
            name=name or f"{self.name}_x{factor:g}",
            metadata=scale_metadata(self.metadata, factor),
            aqps=scale_workload(self.aqps, factor),
            description=self.description,
        )

    def with_injected_annotations(
        self, overrides: Mapping[str, Mapping[int, int]], name: str | None = None
    ) -> "Scenario":
        """Inject per-node cardinalities, keyed by query name then node position."""
        aqps = []
        for aqp in self.aqps:
            if aqp.name in overrides:
                aqps.append(aqp.inject_annotations(overrides[aqp.name]))
            else:
                aqps.append(aqp.copy())
        return Scenario(
            name=name or f"{self.name}_injected",
            metadata=self.metadata,
            aqps=aqps,
            description=self.description,
        )


def scale_workload(
    aqps: Iterable[AnnotatedQueryPlan], factor: float
) -> list[AnnotatedQueryPlan]:
    """Scale every annotation of every AQP by ``factor``."""
    return [aqp.scale_annotations(factor) for aqp in aqps]


def scale_metadata(metadata: DatabaseMetadata, factor: float) -> DatabaseMetadata:
    """Scale every relation's row count (statistics shapes are kept)."""
    scaled = copy.deepcopy(metadata)
    for stats in scaled.statistics.values():
        stats.row_count = max(1, int(round(stats.row_count * factor)))
        for column_stats in stats.columns.values():
            column_stats.row_count = stats.row_count
    return scaled


def check_feasibility(
    scenario: Scenario, max_regions: int = 200_000
) -> FeasibilityReport:
    """Check whether a scenario's constraint set is exactly satisfiable.

    The per-relation LPs are solved in soft mode; any constraint with a
    non-negligible residual is reported.  A scenario is declared infeasible
    when some constraint is off by more than 1% — the threshold below which
    the paper treats discrepancies as the unavoidable "minor additive errors".
    """
    hydra = Hydra(
        metadata=scenario.metadata,
        mode="soft",
        compute_grid_baseline=False,
        max_regions=max_regions,
    )
    try:
        result = hydra.build_summary(scenario.aqps)
    except InfeasibleConstraintsError as exc:
        return FeasibilityReport(
            feasible=False,
            issues=[FeasibilityIssue(exc.relation, str(exc), float("inf"))],
            max_relative_error=float("inf"),
        )

    issues: list[FeasibilityIssue] = []
    for info in result.report.relations.values():
        if info.max_relative_error > 1e-6:
            issues.append(
                FeasibilityIssue(
                    relation=info.relation,
                    constraint=f"{info.num_constraints} constraints",
                    relative_error=info.max_relative_error,
                )
            )
    max_error = result.report.max_relative_error()
    return FeasibilityReport(
        feasible=max_error <= 0.01,
        issues=issues,
        max_relative_error=max_error,
    )


def check_delta_feasibility(
    hydra: Hydra,
    base_result: HydraBuildResult,
    new_aqps: Iterable[AnnotatedQueryPlan],
) -> FeasibilityReport:
    """Feasibility of injected delta AQPs against an existing build.

    The dynamic-workload analogue of :func:`check_feasibility`: instead of
    soft-solving every relation of the scenario from scratch, the delta is
    run through incremental maintenance (:meth:`Hydra.extend_summary` in soft
    mode), which re-solves **only** the relations the delta actually touches
    and reports their residuals.  Relations the delta leaves alone cannot
    gain new inconsistencies, so skipping them is sound — and it makes
    repeated what-if probing against a large base workload cheap.

    ``hydra`` is the pipeline that built ``base_result``; the soft probe
    inherits its configuration (row-count overrides, alignment, region
    budget), because a configuration mismatch would change every relation's
    build inputs and silently degrade the probe into a full soft rebuild
    judged against the wrong row counts.  ``base_result`` must carry
    extension state (a :meth:`Hydra.build_summary` result, or one restored
    via :meth:`Hydra.restore_result`).
    """
    probe = Hydra(
        metadata=hydra.metadata,
        mode="soft",
        alignment=hydra.alignment,
        compute_grid_baseline=False,
        guided_solutions=hydra.guided_solutions,
        max_regions=hydra.max_regions,
        sampling_seed=hydra.sampling_seed,
        row_count_overrides=dict(hydra.row_count_overrides),
    )
    try:
        extended = probe.extend_summary(base_result, list(new_aqps))
    except InfeasibleConstraintsError as exc:
        return FeasibilityReport(
            feasible=False,
            issues=[FeasibilityIssue(exc.relation, str(exc), float("inf"))],
            max_relative_error=float("inf"),
        )

    issues: list[FeasibilityIssue] = []
    max_error = 0.0
    for info in extended.report.relations.values():
        if info.reused:
            continue
        max_error = max(max_error, info.max_relative_error)
        if info.max_relative_error > 1e-6:
            issues.append(
                FeasibilityIssue(
                    relation=info.relation,
                    constraint=f"{info.num_constraints} constraints",
                    relative_error=info.max_relative_error,
                )
            )
    return FeasibilityReport(
        feasible=max_error <= 0.01,
        issues=issues,
        max_relative_error=max_error,
    )


def build_scenario(
    scenario: Scenario,
    mode: str = "soft",
    max_regions: int = 200_000,
    row_count_overrides: Mapping[str, int] | None = None,
) -> HydraBuildResult:
    """Build the regeneration summary for a (validated) scenario."""
    hydra = Hydra(
        metadata=scenario.metadata,
        mode="soft" if mode == "soft" else "exact",
        max_regions=max_regions,
        row_count_overrides=dict(row_count_overrides or {}),
    )
    return hydra.build_summary(scenario.aqps)


def exabyte_extrapolation(
    scenario: Scenario, target_total_rows: int
) -> Scenario:
    """Scale a scenario so its total row count reaches ``target_total_rows``.

    This reproduces the demo's closing act: an extrapolated exabyte-class
    environment whose summary is still built in seconds because the pipeline
    is data-scale-free.
    """
    current_total = sum(
        stats.row_count for stats in scenario.metadata.statistics.values()
    )
    if current_total <= 0:
        raise ValueError("scenario metadata reports no rows to scale from")
    factor = target_total_rows / current_total
    return scenario.scaled(factor, name=f"{scenario.name}_extrapolated")


def total_rows(metadata: DatabaseMetadata) -> int:
    """Total rows across all relations of a metadata package."""
    return sum(stats.row_count for stats in metadata.statistics.values())


def annotation_totals(aqps: Sequence[AnnotatedQueryPlan]) -> int:
    """Sum of all AQP annotations (used by scenario sanity checks)."""
    return sum(edge.cardinality for aqp in aqps for edge in aqp.edges())
