"""Annotated Query Plans: a plan tree paired with its originating query.

The :class:`AnnotatedQueryPlan` is the unit of information HYDRA ships from
client to vendor (together with schema and metadata).  It supports JSON
round-tripping — the demo paper notes that the JSON plan format is what the
client interface parses — plus the helpers used by scenario construction
(annotation injection and scaling) and by the quality report (edge listing).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from ..sql.query import Query
from .logical import PlanNode, plan_from_dict

__all__ = ["AnnotatedQueryPlan", "AQPEdge"]


@dataclass(frozen=True)
class AQPEdge:
    """One annotated output edge of an AQP operator."""

    query: str
    node_id: int
    operator: str
    description: str
    cardinality: int


@dataclass
class AnnotatedQueryPlan:
    """A query together with its (cardinality-annotated) execution plan."""

    query: Query
    plan: PlanNode

    @property
    def name(self) -> str:
        return self.query.name

    @property
    def is_annotated(self) -> bool:
        return all(node.cardinality is not None for node in self.plan.iter_nodes())

    def edges(self) -> list[AQPEdge]:
        """All annotated operator output edges (skipping unannotated nodes)."""
        result = []
        for node in self.plan.iter_nodes():
            if node.cardinality is None:
                continue
            result.append(
                AQPEdge(
                    query=self.query.name,
                    node_id=node.node_id,
                    operator=node.operator,
                    description=node.describe(),
                    cardinality=int(node.cardinality),
                )
            )
        return result

    def scale_annotations(self, factor: float) -> "AnnotatedQueryPlan":
        """Return a copy with every cardinality multiplied by ``factor``.

        This is the basic building block of the demo's scenario construction
        ("extrapolated exabyte scenario").  Aggregate outputs are left alone:
        COUNT(*) produces one row regardless of the data volume.
        """
        clone = self.copy()
        clone.plan.map_annotations(
            lambda node, card: card
            if node.operator == "AGGREGATE"
            else max(0, round(card * factor))
        )
        return clone

    def inject_annotations(self, overrides: Mapping[int, int]) -> "AnnotatedQueryPlan":
        """Return a copy with specific node annotations replaced.

        ``overrides`` maps the *position* of the node in pre-order traversal
        (0-based) to the injected cardinality, which is stable across
        serialisation (unlike ``node_id``).
        """
        clone = self.copy()
        for position, node in enumerate(clone.plan.iter_nodes()):
            if position in overrides:
                node.cardinality = int(overrides[position])
        return clone

    def copy(self) -> "AnnotatedQueryPlan":
        return AnnotatedQueryPlan.from_dict(self.to_dict())

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"query": self.query.to_dict(), "plan": self.plan.to_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnnotatedQueryPlan":
        return cls(
            query=Query.from_dict(payload["query"]),
            plan=plan_from_dict(payload["plan"]),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "AnnotatedQueryPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "AnnotatedQueryPlan":
        return cls.from_json(Path(path).read_text())

    def pretty(self) -> str:
        return f"-- {self.query.name}\n{self.query.sql}\n{self.plan.pretty()}"


def total_constraint_count(aqps: Iterable[AnnotatedQueryPlan]) -> int:
    """Total number of annotated edges across a workload's AQPs."""
    return sum(len(aqp.edges()) for aqp in aqps)


def map_workload(
    aqps: Iterable[AnnotatedQueryPlan],
    transform: Callable[[AnnotatedQueryPlan], AnnotatedQueryPlan],
) -> list[AnnotatedQueryPlan]:
    """Apply a transformation to every AQP of a workload (scenario helpers)."""
    return [transform(aqp) for aqp in aqps]
