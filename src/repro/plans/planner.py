"""A deterministic planner producing left-deep filter/join trees.

HYDRA relies on the client and vendor sites choosing the *same* plan for a
query (the paper uses CODD's metadata transfer to guarantee this on
PostgreSQL).  In this reproduction the guarantee comes from determinism: the
planner derives the plan purely from the query text and the schema, so both
sites — and the verification step — always operate on structurally identical
plans and the per-operator cardinalities are directly comparable.

Plan shape:

* one ``Scan`` per table, with a ``Filter`` directly above it whenever the
  query has a predicate on that table (filters are pushed down to the scans,
  exactly as in the paper's Figure 1c);
* a left-deep chain of key/foreign-key ``Join`` operators.  The anchor (the
  left-most input) is chosen as the table that *references* the others — the
  fact table in a star query — so every join step filters the anchor rather
  than multiplying it;
* an optional ``Project`` / ``Aggregate`` on top.

Structural analysis of the joins — classification, connectivity, anchor
scoring, attachment order — lives in the :class:`~repro.plans.joingraph
.JoinGraph` the planner builds from the query's predicate algebra; this
module turns the graph's deterministic answers into plan trees and pushdown
metadata.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..catalog.schema import Schema, Table
from ..sql.predicates import (
    BoxCondition,
    Interval,
    IntervalSet,
    Predicate,
    box_semantics_exact,
)
from ..sql.query import DisjunctiveJoinCondition, JoinCondition, Query
from .joingraph import JoinGraph, classify_fk_edge
from .logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    leaf_scan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.summary import RelationSummary

__all__ = [
    "PlannerError",
    "ScanPushdown",
    "build_plan",
    "choose_anchor",
    "compute_pushdowns",
    "compute_semijoin_pushdowns",
    "exact_predicate_box",
    "fk_join_edge",
    "parse_aggregate_projection",
]


class PlannerError(ValueError):
    """Raised when no valid left-deep key/FK join plan exists for the query."""


_AGGREGATE_PROJECTION = re.compile(r"^(count|sum|avg)\((.+)\)$", re.IGNORECASE)


def parse_aggregate_projection(projection: list[str]) -> tuple[str, str | None] | None:
    """``(function, argument)`` when the projection is a single aggregate.

    ``["count(*)"]`` yields ``("count", None)``; ``["sum(T.C)"]`` yields
    ``("sum", "T.C")``.  Returns ``None`` for non-aggregate projections;
    raises :class:`PlannerError` for malformed aggregates (``count`` with a
    column argument, ``sum``/``avg`` over ``*``).
    """
    if len(projection) != 1:
        return None
    match = _AGGREGATE_PROJECTION.match(projection[0].strip())
    if match is None:
        return None
    function, argument = match.group(1).lower(), match.group(2).strip()
    if function == "count":
        if argument != "*":
            raise PlannerError(f"count over a column is not supported: {projection[0]!r}")
        return "count", None
    if argument == "*":
        raise PlannerError(f"{function}(*) is not a valid aggregate: {projection[0]!r}")
    return function, argument


def _leaf_plan(query: Query, table: str) -> PlanNode:
    node: PlanNode = ScanNode(table=table)
    if query.has_filter(table):
        node = FilterNode(child=node, table=table, predicate=query.filter_for(table))
    return node


def choose_anchor(schema: Schema, query: Query) -> str:
    """Pick the anchor (left-most) table of the left-deep join chain."""
    return JoinGraph.from_query(query, schema).choose_anchor(schema)


def build_plan(query: Query, schema: Schema) -> PlanNode:
    """Build the deterministic left-deep plan for an SPJ query."""
    query.validate(schema)
    graph = JoinGraph.from_query(query, schema)
    anchor = graph.choose_anchor(schema)

    plan = _leaf_plan(query, anchor)
    joined = {anchor}
    attached_edges = 0
    for edge, new_table in graph.left_deep_steps(anchor):
        attached_edges += 1
        if new_table is None:
            # Redundant edge inside the already-joined tables: consumed
            # without a join node (it would not change the output).
            continue
        plan = JoinNode(left=plan, right=_leaf_plan(query, new_table), condition=edge.condition)
        joined.add(new_table)

    if attached_edges < len(graph.edges):
        unattached = [
            str(edge.predicate())
            for edge in graph.edges
            if not (edge.tables[0] in joined and edge.tables[1] in joined)
        ]
        raise PlannerError(
            f"query {query.name!r} has disconnected join graph: "
            f"cannot reach {sorted(set(query.tables) - joined)} "
            f"via join predicate(s) {', '.join(unattached)}"
        )

    unjoined = [table for table in query.tables if table not in joined]
    if unjoined:
        raise PlannerError(
            f"query {query.name!r} lists tables with no join condition: {unjoined}"
        )

    aggregate = parse_aggregate_projection(query.projection)
    if aggregate is not None:
        function, argument = aggregate
        if argument is not None:
            _validate_aggregate_argument(query, schema, argument)
        return AggregateNode(child=plan, function=function, argument=argument)
    if query.projection and query.projection != ["*"]:
        return ProjectNode(child=plan, columns=list(query.projection))
    return plan


def _validate_aggregate_argument(query: Query, schema: Schema, argument: str) -> None:
    """Check that a SUM/AVG argument resolves to exactly one query column."""
    if "." in argument:
        table, column = argument.split(".", 1)
        if table not in query.tables:
            raise PlannerError(
                f"aggregate argument {argument!r} references a table not in FROM"
            )
        if not schema.table(table).has_column(column):
            raise PlannerError(
                f"aggregate argument {argument!r} is not a column of {table!r}"
            )
        return
    owners = [
        table
        for table in query.tables
        if schema.has_table(table) and schema.table(table).has_column(argument)
    ]
    if not owners:
        raise PlannerError(f"aggregate argument {argument!r} matches no query column")
    if len(owners) > 1:
        raise PlannerError(
            f"aggregate argument {argument!r} is ambiguous across tables {owners}"
        )


# ---------------------------------------------------------------------------
# Projection / predicate pushdown analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScanPushdown:
    """What a single scan actually has to produce.

    ``generate_columns`` is the set of columns the scan must generate at all
    (``None`` means every column, e.g. for ``SELECT *``); ``output_columns``
    is the subset that must survive past the scan's own filter — predicate
    columns that nothing upstream references can be dropped after the filter
    mask is applied.  ``predicate`` is the conjunctive filter sitting directly
    on top of the scan, which the engine may fuse into the scan itself.
    """

    table: str
    generate_columns: tuple[str, ...] | None
    output_columns: tuple[str, ...] | None
    predicate: Predicate | None


def compute_pushdowns(plan: PlanNode, schema: Schema) -> dict[int, ScanPushdown]:
    """Per-:class:`ScanNode` projection and predicate pushdown for a plan.

    Walks the plan once and computes, for every scan, the columns referenced
    anywhere upstream (join keys, filter predicates, projections, aggregate
    arguments — everything for ``SELECT *`` style outputs) and the filter
    that sits directly above the scan.  Join-key requirements are read off
    the join conditions' *predicate algebra*: every qualified column
    reference of the condition-as-predicate is required on its table, which
    covers disjunctive joins (each alternative's key pair) with the same
    rule as plain equi-joins.  The execution engine uses the result to
    generate only the requested columns of dataless relations and to
    evaluate pushed filters batch-by-batch, keeping a scan's peak memory
    O(batch_size) instead of O(rows × columns).  Keyed by ``node_id``.
    """
    scans = [node for node in plan.iter_nodes() if isinstance(node, ScanNode)]
    if not scans:
        return {}
    tables = {scan.table for scan in scans}
    required: dict[str, set[str]] = {table: set() for table in tables}
    predicate_only: dict[str, set[str]] = {table: set() for table in tables}
    pushed: dict[int, Predicate] = {}
    # Without a Project/Aggregate root the raw join output is the result, so
    # every column of every table is needed.
    select_all = not isinstance(plan, (ProjectNode, AggregateNode))

    def require_column(name: str) -> None:
        """Mark a (possibly qualified) referenced column as required."""
        if "." in name:
            table, column = name.split(".", 1)
            if table in required:
                required[table].add(column)
        else:
            for table in tables:
                if schema.has_table(table) and schema.table(table).has_column(name):
                    required[table].add(name)

    for node in plan.iter_nodes():
        if isinstance(node, FilterNode):
            if node.table not in required:
                continue
            if isinstance(node.child, ScanNode) and node.child.table == node.table:
                pushed[node.child.node_id] = node.predicate
                predicate_only[node.table] |= node.predicate.columns()
            else:
                # The filter is evaluated above the scan, so its columns must
                # flow through the scan's output.
                required[node.table] |= node.predicate.columns()
        elif isinstance(node, JoinNode):
            for ref in node.condition.as_predicate().itercolumns():
                if ref.table in required:
                    required[ref.table].add(ref.column)
        elif isinstance(node, ProjectNode):
            for name in node.columns:
                require_column(name)
        elif isinstance(node, AggregateNode):
            if node.argument is not None:
                require_column(node.argument)

    result: dict[int, ScanPushdown] = {}
    for scan in scans:
        predicate = pushed.get(scan.node_id)
        if select_all:
            result[scan.node_id] = ScanPushdown(scan.table, None, None, predicate)
            continue
        output = required[scan.table]
        generate = output | predicate_only[scan.table]
        order = schema.table(scan.table).column_names if schema.has_table(scan.table) else []
        result[scan.node_id] = ScanPushdown(
            table=scan.table,
            generate_columns=tuple(name for name in order if name in generate),
            output_columns=tuple(name for name in order if name in output),
            predicate=predicate,
        )
    return result


# ---------------------------------------------------------------------------
# Semi-join foreign-key pushdown analysis
# ---------------------------------------------------------------------------


def exact_predicate_box(predicate: Predicate, table: Table) -> BoxCondition | None:
    """``predicate`` as an *exactly equivalent* box condition, else ``None``.

    Box conditions on continuous columns approximate ``=``, ``!=``, ``<=``
    and ``>`` with epsilon-widened half-open intervals; routing execution or
    summary arithmetic through such a box could diverge from predicate
    evaluation on values inside the epsilon window, so those predicates are
    rejected (see :func:`repro.sql.predicates.box_semantics_exact`).
    """
    discrete = {column.name: column.dtype.is_discrete for column in table.columns}
    if not box_semantics_exact(predicate, discrete):
        return None
    try:
        return predicate.to_box(discrete)
    except ValueError:
        return None


def fk_join_edge(
    condition: "JoinCondition | DisjunctiveJoinCondition", schema: Schema
) -> tuple[str, str, str, str] | None:
    """Resolve a join condition onto the schema's foreign-key graph.

    Returns ``(fk_table, fk_column, ref_table, ref_column)`` when the
    condition equi-joins a foreign-key column onto the primary key it
    references (in either orientation), else ``None``.  Kept as the
    planner-level name of :func:`repro.plans.joingraph.classify_fk_edge` —
    the single eligibility check shared by the semi-join pushdown pass and
    the engine's join fast paths, so the consumers can never disagree about
    which joins follow an FK–PK edge.
    """
    return classify_fk_edge(condition, schema)


def _referenced_filter_box(subtree: PlanNode, table: Table) -> BoxCondition:
    """The referenced side's own pushed filter, as a *sound* box.

    Only the filter sitting directly on the referenced table's scan counts
    (other operators in the subtree can merely remove further rows, which
    keeps any projection derived from this box a superset).  When the filter
    is not exactly box-representable the unconstrained box is returned —
    still sound, just less selective.
    """
    for node in subtree.iter_nodes():
        if (
            isinstance(node, FilterNode)
            and node.table == table.name
            and isinstance(node.child, ScanNode)
        ):
            box = exact_predicate_box(node.predicate, table)
            return box if box is not None else BoxCondition({})
    return BoxCondition({})


def compute_semijoin_pushdowns(
    plan: PlanNode,
    schema: Schema,
    summaries: Mapping[str, "RelationSummary"],
) -> dict[int, BoxCondition]:
    """Per-:class:`ScanNode` semi-join boxes for key/foreign-key joins.

    For every join whose direct child is the leaf access path of the
    *referencing* (foreign-key) side, the referenced side's matching pk
    index intervals — computed from its relation summary and its own pushed
    filter box — are projected into a box condition on the referencing
    side's FK column.  Probe-side summary segments whose admissible FK
    targets all fall outside those intervals can then be skipped without
    generating a tuple, and generated probe rows outside them can be masked
    before the hash probe: either way no join partner exists for them.

    Join eligibility is the graph classification
    (:func:`~repro.plans.joingraph.classify_fk_edge` via
    :func:`fk_join_edge`): only plain equi-joins that follow a schema FK
    edge participate — a disjunctive join never classifies, so it never
    contributes a box.

    The projection is a sound superset of the referenced pks that survive
    into the build side, so skipping/masking never changes the join output.
    It is restricted to the join *directly above* the leaf because a box
    borrowed from a later join in the chain would change the intermediate
    join's output (and its AQP annotation).  Keyed by ``node_id`` of the
    referencing side's scan; only summary-backed referenced relations (whose
    regenerated pks are the auto-numbered indices the summary describes)
    contribute.
    """
    result: dict[int, BoxCondition] = {}
    for node in plan.iter_nodes():
        if not isinstance(node, JoinNode):
            continue
        edge = fk_join_edge(node.condition, schema)
        if edge is None:
            continue
        fk_table, fk_column, ref_table_name, ref_column = edge
        for probe_child, build_child in (
            (node.left, node.right),
            (node.right, node.left),
        ):
            leaf = leaf_scan(probe_child)
            if leaf is None:
                continue
            scan, _filter = leaf
            if scan.table != fk_table:
                continue
            summary = summaries.get(ref_table_name)
            if summary is None:
                continue
            ref_box = _referenced_filter_box(build_child, schema.table(ref_table_name))
            intervals = summary.matching_pk_intervals(ref_box, pk_column=ref_column)
            if intervals is None:
                continue
            # An unselective projection (every referenced pk index reachable)
            # cannot skip or mask anything: FK targets are valid pks by
            # construction, so don't pay the per-batch evaluation for it.
            total = summary.total_rows
            covered = IntervalSet([Interval(0.0, float(total))]).subtract(intervals)
            if total > 0 and covered.count_integers() == 0:
                continue
            box = BoxCondition({fk_column: intervals})
            existing = result.get(scan.node_id)
            result[scan.node_id] = box if existing is None else existing.intersect(box)
    return result
