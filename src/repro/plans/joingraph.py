"""Join graph: tables as nodes, classified join predicates as edges.

The planner, the semi-join pushdown pass and the engine's join fast paths all
need the same three questions answered about a query's joins: *which tables
does each join relate* (classification), *is the whole query connected*
(validity), and *in which deterministic order should the left-deep chain
attach tables* (plan shape).  :class:`JoinGraph` answers them once, from the
predicate algebra, instead of each consumer pattern-matching on raw
conditions.

Edges are built from :class:`repro.sql.query.JoinCondition` /
:class:`repro.sql.query.DisjunctiveJoinCondition` and carry both the
condition and its resolution onto the schema's foreign-key graph
(:func:`classify_fk_edge`).  Graph traversal is hand-rolled breadth-first
search over insertion-ordered adjacency lists, so component and chain
enumeration order is a pure function of the query text — the same
determinism contract the planner gives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from ..catalog.schema import Schema
from ..sql.predicates import AbstractPredicate
from ..sql.query import (
    DisjunctiveJoinCondition,
    JoinCondition,
    Query,
    join_condition_from_dict,
)

__all__ = ["JoinEdge", "JoinGraph", "classify_fk_edge"]


def classify_fk_edge(
    condition: "JoinCondition | DisjunctiveJoinCondition", schema: Schema
) -> tuple[str, str, str, str] | None:
    """Resolve a join condition onto the schema's foreign-key graph.

    Returns ``(fk_table, fk_column, ref_table, ref_column)`` when the
    condition equi-joins a foreign-key column onto the primary key it
    references (in either orientation), else ``None``.  This is the single
    eligibility check shared by the planner's semi-join pushdown pass and
    the engine's join fast paths, so consumers can never disagree about
    which joins follow an FK–PK edge.  Disjunctive joins never classify:
    no single column pair carries the edge.
    """
    if isinstance(condition, DisjunctiveJoinCondition):
        return None
    if condition.left_table == condition.right_table:
        return None
    for fk_table in (condition.left_table, condition.right_table):
        if not schema.has_table(fk_table):
            continue
        fk_column = condition.side_column(fk_table)
        ref_table, ref_column = condition.other_side(fk_table)
        fk = schema.table(fk_table).foreign_key_for(fk_column)
        if (
            fk is not None
            and fk.ref_table == ref_table
            and fk.ref_column == ref_column
            and schema.has_table(ref_table)
            and schema.table(ref_table).primary_key == ref_column
        ):
            return fk_table, fk_column, ref_table, ref_column
    return None


@dataclass(frozen=True)
class JoinEdge:
    """One edge of the join graph: a join condition plus its classification.

    ``fk_table``/``fk_column``/``ref_table``/``ref_column`` are the
    foreign-key resolution from :func:`classify_fk_edge` (all ``None`` when
    the condition does not follow an FK–PK edge, e.g. a disjunctive join).
    """

    condition: "JoinCondition | DisjunctiveJoinCondition"
    fk_table: str | None = None
    fk_column: str | None = None
    ref_table: str | None = None
    ref_column: str | None = None

    @classmethod
    def classify(
        cls, condition: "JoinCondition | DisjunctiveJoinCondition", schema: Schema
    ) -> "JoinEdge":
        """Build an edge from a condition, resolving its FK orientation."""
        resolved = classify_fk_edge(condition, schema)
        if resolved is None:
            return cls(condition=condition)
        fk_table, fk_column, ref_table, ref_column = resolved
        return cls(
            condition=condition,
            fk_table=fk_table,
            fk_column=fk_column,
            ref_table=ref_table,
            ref_column=ref_column,
        )

    @property
    def tables(self) -> tuple[str, str]:
        """The ``(left, right)`` table pair the edge relates."""
        return self.condition.left_table, self.condition.right_table

    @property
    def is_fk_edge(self) -> bool:
        """Whether the condition resolved onto a foreign-key reference."""
        return self.fk_table is not None

    def involves(self, table: str) -> bool:
        """Whether ``table`` is one of the edge's endpoints."""
        return self.condition.involves(table)

    def other_table(self, table: str) -> str:
        """The endpoint on the opposite side of ``table``."""
        left, right = self.tables
        if table == left:
            return right
        if table == right:
            return left
        raise ValueError(f"edge {self!r} does not involve table {table!r}")

    def predicate(self) -> AbstractPredicate:
        """The edge's condition as a classified join predicate.

        The returned predicate satisfies ``is_join()`` — its qualified
        column references span both endpoint tables.
        """
        return self.condition.as_predicate()

    def to_dict(self) -> dict[str, Any]:
        """Serialise the edge (condition payload plus FK classification)."""
        return {
            "condition": self.condition.to_dict(),
            "fk_table": self.fk_table,
            "fk_column": self.fk_column,
            "ref_table": self.ref_table,
            "ref_column": self.ref_column,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JoinEdge":
        """Reconstruct an edge from :meth:`to_dict` output."""
        return cls(
            condition=join_condition_from_dict(payload["condition"]),
            fk_table=payload.get("fk_table"),
            fk_column=payload.get("fk_column"),
            ref_table=payload.get("ref_table"),
            ref_column=payload.get("ref_column"),
        )

    def __repr__(self) -> str:
        """Render the underlying condition with its FK orientation."""
        if self.is_fk_edge:
            return f"JoinEdge({self.condition!r}, fk={self.fk_table}.{self.fk_column})"
        return f"JoinEdge({self.condition!r})"


class JoinGraph:
    """The query's tables and classified join edges as an undirected graph.

    Node order is the query's FROM order and edge order is the query's join
    order; every traversal below iterates in those orders, so everything the
    planner derives from the graph (anchor, attachment order, error
    messages) is deterministic given the query text.
    """

    def __init__(
        self,
        tables: "list[str] | tuple[str, ...]",
        edges: "list[JoinEdge] | tuple[JoinEdge, ...]",
    ) -> None:
        """Store nodes and edges, building the insertion-ordered adjacency."""
        self.tables: tuple[str, ...] = tuple(tables)
        self.edges: tuple[JoinEdge, ...] = tuple(edges)
        self._adjacency: dict[str, list[JoinEdge]] = {table: [] for table in self.tables}
        for edge in self.edges:
            left, right = edge.tables
            for endpoint in (left, right):
                if endpoint in self._adjacency:
                    self._adjacency[endpoint].append(edge)

    @classmethod
    def from_query(cls, query: Query, schema: Schema) -> "JoinGraph":
        """Build the classified join graph of a query against a schema."""
        return cls(
            tables=query.tables,
            edges=[JoinEdge.classify(condition, schema) for condition in query.joins],
        )

    # -- structure --------------------------------------------------------

    def edges_for(self, table: str) -> tuple[JoinEdge, ...]:
        """The edges incident to ``table``, in query join order."""
        return tuple(self._adjacency.get(table, ()))

    def neighbors(self, table: str) -> tuple[str, ...]:
        """Tables adjacent to ``table`` (deduplicated, edge order)."""
        seen: list[str] = []
        for edge in self._adjacency.get(table, ()):
            other = edge.other_table(table)
            if other not in seen:
                seen.append(other)
        return tuple(seen)

    def connected_components(self) -> list[list[str]]:
        """The node partition into connected components, order-stable.

        Components are listed by their first table in FROM order and each
        component's members appear in breadth-first discovery order.
        """
        components: list[list[str]] = []
        visited: set[str] = set()
        for start in self.tables:
            if start in visited:
                continue
            component = [start]
            visited.add(start)
            frontier = [start]
            while frontier:
                table = frontier.pop(0)
                for neighbor in self.neighbors(table):
                    if neighbor not in visited and neighbor in self._adjacency:
                        visited.add(neighbor)
                        component.append(neighbor)
                        frontier.append(neighbor)
            components.append(component)
        return components

    @property
    def is_connected(self) -> bool:
        """Whether every table is reachable from every other (or trivial)."""
        if len(self.tables) <= 1:
            return True
        return len(self.connected_components()) == 1

    def is_chain(self) -> bool:
        """Whether the graph is a simple path (every node degree ≤ 2).

        A connected acyclic graph whose internal nodes have exactly two
        neighbours — the A→B→C shape of snowflake FK chains, as opposed to
        the star shape where one fact table fans out to many dimensions.
        """
        if not self.is_connected:
            return False
        if len(self.tables) <= 1:
            return not self.edges
        if len(self.edges) != len(self.tables) - 1:
            return False
        degrees = [len(self.neighbors(table)) for table in self.tables]
        return max(degrees) <= 2 and degrees.count(1) == 2

    def fk_chain_from(self, anchor: str) -> list[JoinEdge] | None:
        """The FK-directed chain starting at ``anchor``, if the graph is one.

        Returns the edges in walk order when the graph is a chain whose
        every edge is FK-classified *and* oriented away from the anchor
        (each step joins the previous table's foreign key onto the next
        table's primary key — the shape the engine's multi-way COUNT fast
        path serves).  Returns ``None`` otherwise.
        """
        if not self.is_chain() or anchor not in self._adjacency:
            return None
        ordered: list[JoinEdge] = []
        current = anchor
        used: set[int] = set()
        while True:
            step = None
            for edge in self._adjacency[current]:
                if id(edge) not in used:
                    step = edge
                    break
            if step is None:
                break
            if not step.is_fk_edge or step.fk_table != current:
                return None
            used.add(id(step))
            ordered.append(step)
            current = step.other_table(current)
        return ordered if len(ordered) == len(self.edges) else None

    # -- planner services -------------------------------------------------

    def referencing_score(self, schema: Schema, table: str) -> tuple[int, int]:
        """``(fk participations, total participations)`` of a table.

        How many of the query's joins the table enters on the foreign-key
        side, and in how many it participates at all — the anchor-choice
        metric: the fact table of a star query maximises both.  Disjunctive
        edges count as participations; each alternative that puts the table
        on the FK side counts toward the first component, matching what a
        conjunctive rewrite of the disjunction would score.
        """
        fk_side = 0
        participations = 0
        table_obj = schema.table(table)
        for edge in self.edges:
            if not edge.involves(table):
                continue
            participations += 1
            condition = edge.condition
            alternatives = (
                condition.alternatives
                if isinstance(condition, DisjunctiveJoinCondition)
                else (condition,)
            )
            for alt in alternatives:
                if not alt.involves(table):
                    continue
                if table_obj.foreign_key_for(alt.side_column(table)) is not None:
                    fk_side += 1
                    break
        return fk_side, participations

    def choose_anchor(self, schema: Schema) -> str:
        """The left-most table of the left-deep join chain.

        The table with the highest referencing score wins; ties break to
        the earliest table in FROM order (the sort is stable and reversed
        on the score only).
        """
        if len(self.tables) == 1:
            return self.tables[0]
        scored = sorted(
            self.tables,
            key=lambda table: self.referencing_score(schema, table),
            reverse=True,
        )
        return scored[0]

    def left_deep_steps(
        self, anchor: str
    ) -> Iterator[tuple[JoinEdge, str | None]]:
        """Deterministic left-deep attachment order from ``anchor``.

        Yields ``(edge, new_table)`` pairs: repeatedly sweeps the edges in
        query join order, attaching any edge with exactly one endpoint
        already joined (``new_table`` is the endpoint it brings in) and
        discarding edges whose endpoints are both joined already
        (``new_table`` is ``None`` — a redundant edge).  Stops when no sweep
        makes progress; callers detect a disconnected graph by comparing
        the attached tables against the node set.
        """
        joined = {anchor}
        remaining = list(self.edges)
        while remaining:
            progressed = False
            for edge in list(remaining):
                left, right = edge.tables
                left_in = left in joined
                right_in = right in joined
                if left_in and right_in:
                    remaining.remove(edge)
                    progressed = True
                    yield edge, None
                    continue
                if not left_in and not right_in:
                    continue
                new_table = right if left_in else left
                joined.add(new_table)
                remaining.remove(edge)
                progressed = True
                yield edge, new_table
            if not progressed:
                return

    def __repr__(self) -> str:
        """Render the node and edge counts."""
        return f"JoinGraph(tables={list(self.tables)}, edges={len(self.edges)})"
