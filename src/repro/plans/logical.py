"""Logical query plan nodes and Annotated Query Plans (AQPs).

An AQP (Binnig et al., QAGen) is a query execution plan in which the output
edge of every operator is annotated with the row cardinality observed when the
plan was executed at the client site.  AQPs are the central exchange format of
HYDRA: the client produces them, the vendor's LP formulator consumes them, and
the verification step compares them against the cardinalities obtained on the
regenerated database.

The plan algebra is deliberately small — Scan, Filter, Join (key/foreign-key
equi-join), Project and Aggregate — matching the SPJ query class the paper
targets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from ..sql.predicates import Predicate, predicate_from_dict
from ..sql.query import DisjunctiveJoinCondition, JoinCondition, join_condition_from_dict

__all__ = [
    "PlanNode",
    "ScanNode",
    "FilterNode",
    "JoinNode",
    "ProjectNode",
    "AggregateNode",
    "leaf_scan",
    "plan_from_dict",
]


_node_counter = itertools.count()


@dataclass
class PlanNode:
    """Base class of all plan operators.

    ``cardinality`` is the AQP annotation: ``None`` until the plan has been
    executed (or a synthetic value injected by scenario construction).
    """

    node_id: int = field(default_factory=lambda: next(_node_counter), init=False)
    cardinality: int | None = field(default=None, init=False)

    @property
    def children(self) -> tuple["PlanNode", ...]:
        return ()

    @property
    def operator(self) -> str:
        return type(self).__name__.replace("Node", "").upper()

    def iter_nodes(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the plan tree."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def annotated_nodes(self) -> list["PlanNode"]:
        return [node for node in self.iter_nodes() if node.cardinality is not None]

    def clear_annotations(self) -> None:
        for node in self.iter_nodes():
            node.cardinality = None

    def map_annotations(self, transform: Callable[["PlanNode", int], int]) -> None:
        """Apply ``transform(node, cardinality)`` to every annotated node."""
        for node in self.iter_nodes():
            if node.cardinality is not None:
                node.cardinality = int(transform(node, node.cardinality))

    def output_tables(self) -> set[str]:
        """The base tables contributing rows to this operator's output."""
        tables: set[str] = set()
        for child in self.children:
            tables |= child.output_tables()
        return tables

    def describe(self) -> str:
        raise NotImplementedError

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError

    def _base_dict(self, **extra: Any) -> dict[str, Any]:
        payload: dict[str, Any] = {"operator": self.operator, "cardinality": self.cardinality}
        payload.update(extra)
        return payload

    def pretty(self, indent: int = 0) -> str:
        """Human-readable tree rendering (used by reports and the CLI)."""
        card = "?" if self.cardinality is None else str(self.cardinality)
        line = "  " * indent + f"{self.describe()}  [rows={card}]"
        lines = [line]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


@dataclass
class ScanNode(PlanNode):
    """Full scan of a base relation."""

    table: str

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def output_tables(self) -> set[str]:
        return {self.table}

    def describe(self) -> str:
        return f"Scan({self.table})"

    def to_dict(self) -> dict[str, Any]:
        return self._base_dict(table=self.table)


@dataclass
class FilterNode(PlanNode):
    """Selection applied to the rows of a single base table in the input."""

    child: PlanNode
    table: str
    predicate: Predicate

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter({self.table}: {self.predicate!r})"

    def to_dict(self) -> dict[str, Any]:
        return self._base_dict(
            table=self.table,
            predicate=self.predicate.to_dict(),
            child=self.child.to_dict(),
        )


@dataclass
class JoinNode(PlanNode):
    """Equi-join of two sub-plans on a key/foreign-key condition.

    ``condition`` is normally a plain :class:`JoinCondition`; a
    :class:`DisjunctiveJoinCondition` carries the ``(a = x OR b = y)`` shape,
    which the engine executes on the materializing route.
    """

    left: PlanNode
    right: PlanNode
    condition: JoinCondition | DisjunctiveJoinCondition

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"Join({self.condition!r})"

    def to_dict(self) -> dict[str, Any]:
        return self._base_dict(
            condition=self.condition.to_dict(),
            left=self.left.to_dict(),
            right=self.right.to_dict(),
        )


@dataclass
class ProjectNode(PlanNode):
    """Projection onto a list of (qualified) output columns."""

    child: PlanNode
    columns: list[str]

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project({', '.join(self.columns)})"

    def to_dict(self) -> dict[str, Any]:
        return self._base_dict(columns=list(self.columns), child=self.child.to_dict())


@dataclass
class AggregateNode(PlanNode):
    """Scalar aggregate (COUNT(*), SUM(col), AVG(col)) over the child's output.

    ``argument`` is the aggregated column for SUM/AVG and ``None`` for
    COUNT(*).  Serialisation omits the key when absent so pre-SUM/AVG
    payloads round-trip unchanged.
    """

    child: PlanNode
    function: str = "count"
    argument: str | None = None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        if self.argument is None:
            return f"Aggregate({self.function})"
        return f"Aggregate({self.function}({self.argument}))"

    def to_dict(self) -> dict[str, Any]:
        payload = self._base_dict(function=self.function, child=self.child.to_dict())
        if self.argument is not None:
            payload["argument"] = self.argument
        return payload


def leaf_scan(node: PlanNode) -> tuple[ScanNode, FilterNode | None] | None:
    """The ``(scan, filter)`` pair of a leaf access path, if ``node`` is one.

    A leaf access path is a bare :class:`ScanNode` or a :class:`FilterNode`
    sitting directly on the scan of its own table — the shape the planner
    emits for every base relation.  Streaming execution (fused filter+scan,
    build/probe joins, semi-join pushdown) keys off this shape; any other
    subtree returns ``None``.
    """
    if isinstance(node, ScanNode):
        return node, None
    if (
        isinstance(node, FilterNode)
        and isinstance(node.child, ScanNode)
        and node.child.table == node.table
    ):
        return node.child, node
    return None


def plan_from_dict(payload: Mapping[str, Any]) -> PlanNode:
    """Reconstruct a plan tree from its JSON representation."""
    operator = payload["operator"]
    node: PlanNode
    if operator == "SCAN":
        node = ScanNode(table=payload["table"])
    elif operator == "FILTER":
        node = FilterNode(
            child=plan_from_dict(payload["child"]),
            table=payload["table"],
            predicate=predicate_from_dict(payload["predicate"]),
        )
    elif operator == "JOIN":
        node = JoinNode(
            left=plan_from_dict(payload["left"]),
            right=plan_from_dict(payload["right"]),
            condition=join_condition_from_dict(payload["condition"]),
        )
    elif operator == "PROJECT":
        node = ProjectNode(
            child=plan_from_dict(payload["child"]), columns=list(payload["columns"])
        )
    elif operator == "AGGREGATE":
        node = AggregateNode(
            child=plan_from_dict(payload["child"]),
            function=payload.get("function", "count"),
            argument=payload.get("argument"),
        )
    else:
        raise ValueError(f"unknown plan operator {operator!r}")
    cardinality = payload.get("cardinality")
    node.cardinality = None if cardinality is None else int(cardinality)
    return node
