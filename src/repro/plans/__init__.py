"""Query plans: logical operators, the deterministic planner and AQPs."""

from .aqp import AnnotatedQueryPlan, AQPEdge, map_workload, total_constraint_count
from .logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    plan_from_dict,
)
from .planner import (
    PlannerError,
    ScanPushdown,
    build_plan,
    choose_anchor,
    compute_pushdowns,
)

__all__ = [
    "AQPEdge",
    "AggregateNode",
    "AnnotatedQueryPlan",
    "FilterNode",
    "JoinNode",
    "PlanNode",
    "PlannerError",
    "ProjectNode",
    "ScanNode",
    "ScanPushdown",
    "build_plan",
    "choose_anchor",
    "compute_pushdowns",
    "map_workload",
    "plan_from_dict",
    "total_constraint_count",
]
