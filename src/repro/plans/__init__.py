"""Query plans: logical operators, join graph, deterministic planner and AQPs."""

from .aqp import AnnotatedQueryPlan, AQPEdge, map_workload, total_constraint_count
from .joingraph import JoinEdge, JoinGraph, classify_fk_edge
from .logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    plan_from_dict,
)
from .planner import (
    PlannerError,
    ScanPushdown,
    build_plan,
    choose_anchor,
    compute_pushdowns,
)

__all__ = [
    "AQPEdge",
    "AggregateNode",
    "AnnotatedQueryPlan",
    "FilterNode",
    "JoinEdge",
    "JoinGraph",
    "JoinNode",
    "PlanNode",
    "PlannerError",
    "ProjectNode",
    "ScanNode",
    "ScanPushdown",
    "build_plan",
    "choose_anchor",
    "classify_fk_edge",
    "compute_pushdowns",
    "map_workload",
    "plan_from_dict",
    "total_constraint_count",
]
