"""Quickstart: regenerate the paper's Figure-1 toy database.

Walks the complete HYDRA flow on the three-relation example of the paper
(Figure 1): build a client database, extract the Annotated Query Plan of the
example query, build the memory-resident summary at the vendor, regenerate a
dataless database and verify volumetric similarity.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import AQPExtractor, Hydra, VolumetricComparator
from repro.verify.report import format_error_cdf, format_relation_summary
from repro.workload.toy import FIGURE1_QUERY, ToyConfig, generate_toy_database


def main() -> None:
    # ------------------------------------------------------------------ client
    client_db = generate_toy_database(ToyConfig(r_rows=50_000, s_rows=2_000, t_rows=200))
    extractor = AQPExtractor(database=client_db)
    metadata = extractor.profile_metadata()
    aqp = extractor.extract_sql(FIGURE1_QUERY, name="figure1")

    print("=== client site: annotated query plan (Figure 1c) ===")
    print(aqp.query.sql)
    print(aqp.plan.pretty())
    print()

    # ------------------------------------------------------------------ vendor
    hydra = Hydra(metadata=metadata)
    result = hydra.build_summary([aqp])

    print("=== vendor site: summary construction report ===")
    print(result.report.describe())
    print(f"summary size: {result.summary.size_bytes()} bytes "
          f"(client fact table alone holds {client_db.row_count('R')} rows)")
    print()
    print("=== database summary of relation S (#TUPLES view, Figure 4) ===")
    print(format_relation_summary(result.summary, "S"))
    print()

    # ------------------------------------------------- dynamic regeneration
    vendor_db = hydra.regenerate(result.summary)
    print("=== dynamic regeneration: no relation is materialised ===")
    for table in vendor_db.schema.table_names:
        print(f"  {table}: materialised={vendor_db.is_materialized(table)}, "
              f"rows addressable={vendor_db.row_count(table)}")
    print()

    # ------------------------------------------------------------ verification
    verification = VolumetricComparator(database=vendor_db).verify([aqp])
    print("=== volumetric similarity (client AQP vs regenerated database) ===")
    print(format_error_cdf(verification))
    for comparison in verification.comparisons:
        print(f"  {comparison.description:<45} original={comparison.original:>8} "
              f"regenerated={comparison.regenerated:>8} error={comparison.relative_error:.2%}")


if __name__ == "__main__":
    main()
