"""Dynamic regeneration at the vendor: sample tuples and velocity control.

Reproduces the demo's §4.3 segment: the regenerated database holds *no* data;
tuples of the ITEM-like relation are produced on demand during query
execution.  The example prints sample regenerated tuples in the style of the
paper's Table 1 and then streams a relation at several target velocities
(rows/second) to show that the generation rate can be regulated precisely —
using a virtual clock, so the demonstration itself runs instantly.

Run with:  python examples/vendor_regeneration.py
"""

from __future__ import annotations

from repro import (
    AQPExtractor,
    DataGenRelation,
    Hydra,
    RateLimiter,
    VirtualClock,
    WorkloadConfig,
    generate_tpcds_database,
    generate_workload,
)
from repro.verify.report import format_relation_summary, format_sample_tuples
from repro.workload.tpcds import TPCDSConfig


def main() -> None:
    client_db = generate_tpcds_database(TPCDSConfig(scale=0.1))
    extractor = AQPExtractor(database=client_db)
    metadata = extractor.profile_metadata()
    workload = generate_workload(metadata, WorkloadConfig(num_queries=30))
    aqps = extractor.extract_workload(workload)

    hydra = Hydra(metadata=metadata)
    result = hydra.build_summary(aqps)

    # --------------------------------------------------------- summary view
    print("=== ITEM relation summary (#TUPLES view, paper Figure 4) ===")
    print(format_relation_summary(result.summary, "item", limit_rows=8))
    print()

    # --------------------------------------------------- Table 1 style sample
    generator = hydra.tuple_generator(result.summary, "item")
    offsets = list(result.summary.relation("item").row_offsets[:4])
    print("=== sample regenerated tuples (paper Table 1) ===")
    print(
        format_sample_tuples(
            generator,
            offsets,
            columns=["i_item_sk", "i_manager_id", "i_class", "i_category"],
        )
    )
    print()

    # ------------------------------------------------------ velocity control
    print("=== velocity regulation of the store_sales datagen scan ===")
    sales_generator = hydra.tuple_generator(result.summary, "store_sales")
    for rows_per_second in (50_000, 200_000, None):
        clock = VirtualClock()
        limiter = RateLimiter(
            rows_per_second=rows_per_second, clock=clock.now, sleep=clock.sleep
        )
        relation = DataGenRelation(
            source=sales_generator, rate_limiter=limiter, batch_size=4096
        )
        relation.fetch_columns(["ss_item_sk", "ss_quantity"])
        label = "unlimited" if rows_per_second is None else f"{rows_per_second:>7} rows/s"
        achieved = limiter.observed_rate()
        achieved_label = "∞" if achieved == float("inf") else f"{achieved:,.0f} rows/s"
        print(
            f"  target {label}: generated {relation.stats.rows_generated} rows "
            f"in {clock.now():.2f} virtual seconds (observed {achieved_label})"
        )
    print()
    print("no relation was ever materialised; the summary occupies "
          f"{result.summary.size_bytes()} bytes.")


if __name__ == "__main__":
    main()
