"""Client → vendor round trip over the JSON information package (TPC-DS-like).

Reproduces the demo's two-site flow (paper §4.1/§4.2): the client profiles its
warehouse, extracts AQPs for a multi-query workload, optionally anonymises the
package, and ships a single JSON document; the vendor builds the regeneration
summary from the package alone, regenerates a dataless database and produces
the quality report the vendor screen displays.

Run with:  python examples/client_vendor_roundtrip.py [num_queries] [scale]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import (
    AQPExtractor,
    Anonymizer,
    Hydra,
    InformationPackage,
    VolumetricComparator,
    WorkloadConfig,
    generate_tpcds_database,
    generate_workload,
)
from repro.verify.report import QualityReport
from repro.workload.tpcds import TPCDSConfig


def main(num_queries: int = 40, scale: float = 0.1) -> None:
    # ------------------------------------------------------------------ client
    print(f"building synthetic TPC-DS-like client warehouse (scale={scale}) ...")
    client_db = generate_tpcds_database(TPCDSConfig(scale=scale))
    extractor = AQPExtractor(database=client_db)
    metadata = extractor.profile_metadata()
    workload = generate_workload(metadata, WorkloadConfig(num_queries=num_queries))
    aqps = extractor.extract_workload(workload)

    package = InformationPackage(metadata=metadata, aqps=aqps, client_name="retail-client")
    anonymized, mapping = Anonymizer().anonymize(package)
    print(package.describe())
    print(f"anonymised package: {anonymized.describe()}")

    with tempfile.TemporaryDirectory() as tmp:
        package_path = Path(tmp) / "package.json"
        anonymized.save(package_path)
        print(f"shipped {package_path.stat().st_size} bytes to the vendor "
              f"(original database: {client_db.memory_bytes()} bytes)")

        # -------------------------------------------------------------- vendor
        received = InformationPackage.load(package_path)
        hydra = Hydra(metadata=received.metadata)
        result = hydra.build_summary(received.aqps)
        vendor_db = hydra.regenerate(result.summary)
        verification = VolumetricComparator(database=vendor_db).verify(received.aqps)

        report = QualityReport(
            summary=result.summary,
            build_report=result.report,
            verification=verification,
            aqps=received.aqps,
        )
        print()
        print(report.render())
        print()
        worst = verification.worst(3)
        print("three worst edges:")
        for comparison in worst:
            print(f"  {comparison.query} {comparison.description}: "
                  f"{comparison.original} vs {comparison.regenerated} "
                  f"({comparison.relative_error:.2%})")
        # The mapping stays at the client; it can translate vendor findings back.
        sample_table = next(iter(mapping.tables))
        print(f"\n(client-side mapping example: {mapping.tables[sample_table]!r} "
              f"is really {sample_table!r})")


if __name__ == "__main__":
    queries = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1
    main(queries, scale)
