"""Server smoke test: build a summary, serve it, drive every endpoint.

The regeneration server (``repro.server``, ``hydra serve``) loads a summary
once into its refcounted cache and serves queries, verifications, exports
and NDJSON regeneration streams to concurrent HTTP clients.  This
walkthrough closes the loop over a real socket:

1. build a toy client database and its HYDRA summary (as in quickstart);
2. start a :class:`repro.server.BackgroundServer` on an ephemeral port and
   load the summary through the typed client;
3. run a query and assert it matches a direct serial engine execution;
4. verify the workload volumetrically through the server;
5. export to CSV through the server and validate the export against the
   summary through the same endpoint the CLI's ``--against`` flag uses;
6. stream a full regeneration as NDJSON and account for every row;
7. swap the version under a held query and evict.

Run with:  python examples/server_smoke.py
(CI executes this file as a smoke test; it exits non-zero on any mismatch.)
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import AQPExtractor, Hydra, ServerClient
from repro.client.package import InformationPackage
from repro.executor.engine import ExecutionEngine
from repro.plans.planner import build_plan
from repro.server import BackgroundServer, SummaryService
from repro.server.service import external_result_columns
from repro.sql.parser import parse_query
from repro.workload.toy import FIGURE1_QUERY, ToyConfig, generate_toy_database

QUERY = "select count(*) from S where S.A >= 20 and S.A < 60"


def main() -> int:
    # 1. Client site: toy database, metadata, AQPs, summary.
    database = generate_toy_database(ToyConfig(r_rows=5_000, s_rows=500, t_rows=50))
    extractor = AQPExtractor(database=database)
    metadata = extractor.profile_metadata()
    aqps = [extractor.extract_sql(FIGURE1_QUERY, name="figure1")]
    hydra = Hydra(metadata=metadata)
    summary = hydra.build_summary(aqps).summary
    print(f"summary: {summary.size_bytes():,} bytes, {summary.total_rows():,} rows")

    # Direct serial engine run: the correctness baseline.
    direct_db = hydra.regenerate(summary)
    engine = ExecutionEngine(database=direct_db, annotate=True)
    plan = build_plan(parse_query(QUERY, direct_db.schema), direct_db.schema)
    direct = engine.execute(plan)
    expected = external_result_columns(direct_db, direct.columns)

    # 2. Serve it.
    service = SummaryService()
    with BackgroundServer(service) as server:
        client = ServerClient("127.0.0.1", server.port)
        info = client.load_summary("toy", summary=summary.to_dict())
        print(f"loaded '{info.name}' generation {info.generation} ({info.fingerprint[:12]})")

        # 3. Query: bit-identical to the direct run.
        response = client.query("toy", QUERY)
        if response.columns != expected:
            print(f"MISMATCH: served {response.columns} != direct {expected}")
            return 1
        print(f"query: count={response.columns['count'][0]} "
              f"route={response.aggregate_route} (matches direct engine run)")

        # 4. Volumetric verification through the server.
        with tempfile.TemporaryDirectory() as tmp:
            package_path = Path(tmp) / "package.json"
            InformationPackage(metadata=metadata, aqps=aqps).save(package_path)
            verification = client.verify("toy", package_path=str(package_path))
            if not verification.ok:
                print(f"volumetric verification failed: {verification}")
                return 1
            print(f"verify: {verification.total_edges} edges, "
                  f"max rel. error {verification.max_relative_error:.4f}")

            # 5. Export + export-validation through the server.
            out_dir = Path(tmp) / "export"
            export = client.export("toy", format="csv", out_dir=str(out_dir))
            against = client.verify(
                "toy", package_path=str(package_path), against_dir=str(out_dir)
            )
            if not against.ok:
                print(f"export validation failed: {against.problems}")
                return 1
            print(f"export: {export.total_rows:,} rows to csv, revalidated "
                  f"({against.rows_checked:,} rows checked)")

        # 6. NDJSON regeneration stream.
        done = [event for event in client.regenerate("toy") if event.event == "done"]
        if not done or done[0].rows != summary.total_rows():
            print(f"regeneration stream lost rows: {done}")
            return 1
        print(f"regenerate: streamed {done[0].rows:,} rows "
              f"in {done[0].seconds:.2f}s as NDJSON")

        # 7. Version swap + evict.
        swapped = client.load_summary("toy", summary=summary.to_dict())
        if not swapped.cache_hit:
            print("re-loading identical content must be a cache hit")
            return 1
        if not client.evict("toy").evicted:
            print("evict must report the entry removed")
            return 1
        print(f"cache: identical reload was a hit, evict ok "
              f"({len(client.list_summaries())} summaries left)")

    print("server smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
