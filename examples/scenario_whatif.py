"""Scenario construction: what-if cardinalities and an exabyte extrapolation.

Reproduces the demo's §4.4 segment.  Starting from a real client workload, the
vendor (a) injects synthetic cardinalities into an AQP and checks whether the
resulting environment is even feasible, and (b) extrapolates the whole
scenario to an exabyte-class row count, showing that summary construction is
data-scale-free: the summary is built just as fast and stays just as small,
while the regenerated (dataless) relations become astronomically large.

Run with:  python examples/scenario_whatif.py
"""

from __future__ import annotations

import time

from repro import AQPExtractor, Hydra, WorkloadConfig, generate_tpcds_database, generate_workload
from repro.core.scenario import (
    Scenario,
    build_scenario,
    check_feasibility,
    exabyte_extrapolation,
    total_rows,
)
from repro.workload.tpcds import TPCDSConfig


def main() -> None:
    client_db = generate_tpcds_database(TPCDSConfig(scale=0.1))
    extractor = AQPExtractor(database=client_db)
    metadata = extractor.profile_metadata()
    workload = generate_workload(metadata, WorkloadConfig(num_queries=25))
    aqps = extractor.extract_workload(workload)
    base = Scenario(name="client", metadata=metadata, aqps=aqps)

    # ------------------------------------------------- injected cardinalities
    print("=== what-if: inject synthetic cardinalities into one AQP ===")
    target = base.aqps[0]
    single_query = Scenario(name="single", metadata=metadata, aqps=[target])
    filter_positions = [
        position
        for position, node in enumerate(target.plan.iter_nodes())
        if node.operator == "FILTER"
    ]
    nodes = list(target.plan.iter_nodes())
    feasible_injection = {
        position: max(1, (nodes[position].cardinality or 2) // 2)
        for position in filter_positions
    }
    infeasible_injection = {
        position: 10 * total_rows(metadata) for position in filter_positions
    }

    cases = (
        ("plausible (stand-alone what-if)", single_query, feasible_injection),
        ("absurd (filter larger than its table)", single_query, infeasible_injection),
        ("conflicting with the rest of the workload", base, feasible_injection),
    )
    for label, scenario_base, injection in cases:
        scenario = scenario_base.with_injected_annotations({target.name: injection}, name=label)
        report = check_feasibility(scenario)
        print(f"  {label}: {report.describe().splitlines()[0]}")
    print()

    # ------------------------------------------------- exabyte extrapolation
    print("=== extrapolated exabyte-class scenario (data-scale-free build) ===")
    for target_rows in (10**7, 10**9, 10**12):
        scenario = exabyte_extrapolation(base, target_rows)
        start = time.perf_counter()
        result = build_scenario(scenario, mode="exact")
        elapsed = time.perf_counter() - start
        print(
            f"  target {target_rows:>16,} rows: summary built in {elapsed:6.2f}s, "
            f"{result.summary.total_summary_rows()} summary rows, "
            f"{result.summary.size_bytes():,} bytes, "
            f"regenerable rows {result.summary.total_rows():,}"
        )
        hydra = Hydra(metadata=scenario.metadata)
        vendor_db = hydra.regenerate(result.summary)
        fact = vendor_db.provider("store_sales")
        last = fact.row(fact.row_count - 1)
        print(f"      on-demand access: store_sales[{fact.row_count - 1:,}] = {last[:4]} ...")
    print()
    print("The summary size and construction time track the workload, not the "
          "data volume — the regenerated relations above were never materialised.")


if __name__ == "__main__":
    main()
