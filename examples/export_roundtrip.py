"""Export round-trip: summary → SQLite export → re-query with a real client.

The point of the ``repro.sinks`` subsystem is that the regenerated database
stops being an in-process artefact: after an export, any off-the-shelf
database client can query it.  This walkthrough proves the loop closes:

1. build a toy client database and its HYDRA summary (as in quickstart);
2. stream-export every relation into a SQLite database file
   (``repro.sinks.SqliteSink``) with a ``MANIFEST.json`` alongside;
3. validate the export against the summary (``verify_export``) without
   regenerating a tuple;
4. re-run the workload's filter COUNTs through the **stdlib ``sqlite3``
   client** against the exported file and compare each count against the
   engine executing the same predicate over the dataless (in-memory
   regenerated) database — they must agree exactly.

Run with:  python examples/export_roundtrip.py
(CI executes this file as a smoke test; it exits non-zero on any mismatch.)
"""

from __future__ import annotations

import sqlite3
import sys
import tempfile
from pathlib import Path

from repro import AQPExtractor, Hydra
from repro.executor.engine import ExecutionEngine
from repro.plans.planner import build_plan
from repro.sinks import SqliteSink, export_summary, verify_export
from repro.sql.parser import parse_query
from repro.workload.toy import FIGURE1_QUERY, ToyConfig, generate_toy_database

#: COUNT queries re-run through both the engine and the sqlite3 client.
#: The SQL is shared verbatim: the toy schema's predicates are plain
#: comparisons, valid in both the repro parser and SQLite.
COUNT_QUERIES = [
    "select count(*) from S where S.A >= 20 and S.A < 60",
    "select count(*) from T where T.C >= 2 and T.C < 3",
    "select count(*) from R where R.S_fk >= 100 and R.S_fk < 700",
    "select count(*) from R",
]


def engine_count(database, schema, sql: str, name: str) -> int:
    """Execute one COUNT over the dataless regenerated database."""
    plan = build_plan(parse_query(sql, schema, name=name), schema)
    result = ExecutionEngine(database=database).execute(plan)
    return int(result.column("count")[0])


def main() -> int:
    # ------------------------------------------------------------------ build
    client_db = generate_toy_database(ToyConfig(r_rows=20_000, s_rows=800, t_rows=100))
    extractor = AQPExtractor(database=client_db)
    metadata = extractor.profile_metadata()
    aqp = extractor.extract_sql(FIGURE1_QUERY, name="figure1")
    hydra = Hydra(metadata=metadata)
    summary = hydra.build_summary([aqp]).summary
    print(f"summary: {summary.size_bytes()} bytes for "
          f"{summary.total_rows():,} regenerable rows")

    with tempfile.TemporaryDirectory(prefix="hydra_export_") as out_dir:
        # --------------------------------------------------------------- export
        manifest = export_summary(summary, SqliteSink(out_dir))
        database_file = Path(out_dir) / "export.sqlite"
        print(f"exported {manifest.total_rows():,} rows to {database_file}")

        # --------------------------------------------------- manifest validation
        validation = verify_export(summary, out_dir)
        print(validation.describe())
        if not validation.ok:
            return 1

        # ------------------------------------------- re-query via sqlite3 client
        vendor_db = hydra.regenerate(summary)  # dataless reference
        connection = sqlite3.connect(database_file)
        print()
        print(f"{'query':<58} {'engine':>9} {'sqlite3':>9}")
        mismatches = 0
        for index, sql in enumerate(COUNT_QUERIES):
            expected = engine_count(vendor_db, metadata.schema, sql, f"count_{index}")
            # The SQL goes to SQLite verbatim — qualified columns like "S.A"
            # are valid in both dialects.
            got = int(connection.execute(sql).fetchone()[0])
            status = "ok" if got == expected else "MISMATCH"
            print(f"{sql:<58} {expected:>9,} {got:>9,}  {status}")
            if got != expected:
                mismatches += 1
        connection.close()
        if mismatches:
            print(f"{mismatches} count(s) diverged between engine and export")
            return 1
    print()
    print("round-trip OK: sqlite3 client counts match the regeneration engine")
    return 0


if __name__ == "__main__":
    sys.exit(main())
